#include <gtest/gtest.h>

#include "fo/naive_eval.h"
#include "relational/adjacency_graph.h"
#include "relational/database.h"
#include "relational/rewrite.h"
#include "util/rng.h"

namespace nwd {
namespace relational {
namespace {

Database SampleDatabase() {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 3);
  Database db(schema, 6);
  db.AddFact("R", {0, 1});
  db.AddFact("R", {1, 2});
  db.AddFact("R", {1, 2});  // duplicate
  db.AddFact("S", {0, 3, 5});
  return db;
}

TEST(Schema, Lookup) {
  Schema schema;
  EXPECT_EQ(schema.AddRelation("R", 2), 0);
  EXPECT_EQ(schema.AddRelation("S", 3), 1);
  EXPECT_EQ(schema.IndexOf("S"), 1);
  EXPECT_EQ(schema.IndexOf("T"), -1);
  EXPECT_EQ(schema.MaxArity(), 3);
  EXPECT_EQ(schema.Arity(0), 2);
}

TEST(Database, FactsAreSortedAndDeduped) {
  const Database db = SampleDatabase();
  EXPECT_EQ(db.Facts(0).size(), 2u);
  EXPECT_TRUE(db.HasFact(0, {0, 1}));
  EXPECT_FALSE(db.HasFact(0, {2, 1}));
  EXPECT_EQ(db.SizeNorm(), 6 + 2 * 2 + 1 * 3);
}

TEST(AdjacencyGraph, StructureCounts) {
  const Database db = SampleDatabase();
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  // 6 elements + 3 facts + (2+2+3) position nodes.
  EXPECT_EQ(a.graph.NumVertices(), 6 + 3 + 7);
  // Each position node contributes two edges.
  EXPECT_EQ(a.graph.NumEdges(), 14);
  EXPECT_EQ(a.num_elements, 6);
  // Element color marks exactly the domain.
  EXPECT_EQ(a.graph.ColorMembers(a.element_color).size(), 6u);
  // Degrees of fact nodes equal arities.
  EXPECT_EQ(a.max_arity, 3);
}

TEST(AdjacencyGraph, IsDegenerateSparse) {
  // A'(D) is a 1-subdivision: it is always 2-degenerate regardless of how
  // dense the relational data is — the point of the transform.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db(schema, 12);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) {
      if (i != j) db.AddFact("R", {i, j});
    }
  }
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  // Position nodes have degree exactly 2.
  for (Vertex v = a.num_elements; v < a.graph.NumVertices(); ++v) {
    if (a.graph.HasColor(v, a.position_color_base) ||
        a.graph.HasColor(v, a.position_color_base + 1)) {
      EXPECT_EQ(a.graph.Degree(v), 2);
    }
  }
}

// Lemma 2.2: D |= R(a, b) iff A'(D) |= psi(a, b).
TEST(Rewrite, RelationAtomEquivalence) {
  const Database db = SampleDatabase();
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  const fo::FormulaPtr psi = Relativize(
      a, RelationAtom(a, db.schema(), "R", {0, 1}, /*first_fresh_var=*/2),
      {0, 1});
  fo::NaiveEvaluator eval(a.graph);
  fo::Query query;
  query.formula = psi;
  query.free_vars = {0, 1};
  for (int64_t x = 0; x < db.domain_size(); ++x) {
    for (int64_t y = 0; y < db.domain_size(); ++y) {
      EXPECT_EQ(eval.TestTuple(query, {x, y}), db.HasFact(0, {x, y}))
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(Rewrite, TernaryRelationAtomEquivalence) {
  const Database db = SampleDatabase();
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  const fo::FormulaPtr psi = Relativize(
      a, RelationAtom(a, db.schema(), "S", {0, 1, 2}, 3), {0, 1, 2});
  fo::NaiveEvaluator eval(a.graph);
  fo::Query query;
  query.formula = psi;
  query.free_vars = {0, 1, 2};
  EXPECT_TRUE(eval.TestTuple(query, {0, 3, 5}));
  EXPECT_FALSE(eval.TestTuple(query, {3, 0, 5}));
  EXPECT_FALSE(eval.TestTuple(query, {0, 3, 4}));
}

// A join query: q(x, z) := exists y (R(x, y) & R(y, z)).
TEST(Rewrite, JoinQueryEquivalence) {
  const Database db = SampleDatabase();
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  // Variables: x=0, z=1, y=2; fresh from 3 (each atom uses 3 fresh vars).
  const fo::FormulaPtr r_xy =
      RelationAtom(a, db.schema(), "R", {0, 2}, 3);
  const fo::FormulaPtr r_yz =
      RelationAtom(a, db.schema(), "R", {2, 1}, 6);
  const fo::FormulaPtr psi = Relativize(
      a,
      fo::Exists(2, fo::And(fo::Color(a.element_color, 2),
                            fo::And(r_xy, r_yz))),
      {0, 1});
  fo::NaiveEvaluator eval(a.graph);
  fo::Query query;
  query.formula = psi;
  query.free_vars = {0, 1};

  // Direct relational evaluation as ground truth.
  for (int64_t x = 0; x < db.domain_size(); ++x) {
    for (int64_t z = 0; z < db.domain_size(); ++z) {
      bool expected = false;
      for (int64_t y = 0; y < db.domain_size(); ++y) {
        expected = expected ||
                   (db.HasFact(0, {x, y}) && db.HasFact(0, {y, z}));
      }
      EXPECT_EQ(eval.TestTuple(query, {x, z}), expected)
          << "(" << x << "," << z << ")";
    }
  }
}

TEST(Rewrite, RandomizedLemma22) {
  Rng rng(99);
  Schema schema;
  schema.AddRelation("E2", 2);
  Database db(schema, 8);
  for (int f = 0; f < 10; ++f) {
    db.AddFact("E2", {rng.NextInt(0, 7), rng.NextInt(0, 7)});
  }
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  const fo::FormulaPtr psi = Relativize(
      a, RelationAtom(a, db.schema(), "E2", {0, 1}, 2), {0, 1});
  fo::NaiveEvaluator eval(a.graph);
  fo::Query query;
  query.formula = psi;
  query.free_vars = {0, 1};
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      EXPECT_EQ(eval.TestTuple(query, {x, y}), db.HasFact(0, {x, y}));
    }
  }
}

}  // namespace
}  // namespace relational
}  // namespace nwd
