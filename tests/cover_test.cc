#include <gtest/gtest.h>

#include <algorithm>

#include "cover/kernel.h"
#include "cover/neighborhood_cover.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace nwd {
namespace {

struct CoverParams {
  int graph_kind;  // 0 tree, 1 bounded degree, 2 grid, 3 ER
  int radius;
  uint64_t seed;
};

ColoredGraph MakeGraph(int kind, Rng* rng) {
  switch (kind) {
    case 0:
      return gen::RandomTree(300, 0, {1, 0.3}, rng);
    case 1:
      return gen::BoundedDegreeGraph(300, 4, 2.5, {1, 0.3}, rng);
    case 2:
      return gen::Grid(15, 20, {1, 0.3}, rng);
    default:
      return gen::ErdosRenyi(200, 3.0, {1, 0.3}, rng);
  }
}

class CoverPropertyTest : public ::testing::TestWithParam<CoverParams> {};

TEST_P(CoverPropertyTest, IsValidRTwoRCover) {
  const CoverParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, params.radius);
  BfsScratch scratch(g.NumVertices());

  // Definition 4.3: X(a) contains N_r(a), every bag is inside some 2r-ball.
  for (Vertex a = 0; a < g.NumVertices(); ++a) {
    const int64_t bag = cover.AssignedBag(a);
    ASSERT_GE(bag, 0);
    const auto ball = scratch.Neighborhood(g, a, params.radius);
    for (Vertex b : ball) {
      EXPECT_TRUE(cover.InBag(bag, b))
          << "N_r(" << a << ") not inside bag " << bag;
    }
  }
  for (int64_t bag = 0; bag < cover.NumBags(); ++bag) {
    const auto big_ball =
        scratch.Neighborhood(g, cover.Center(bag), 2 * params.radius);
    const auto& members = cover.Bag(bag);
    EXPECT_TRUE(std::includes(big_ball.begin(), big_ball.end(),
                              members.begin(), members.end()))
        << "bag " << bag << " escapes N_2r of its center";
  }
}

TEST_P(CoverPropertyTest, BookkeepingIsConsistent) {
  const CoverParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, params.radius);

  // AssignedVertices partitions V.
  int64_t assigned_total = 0;
  for (int64_t bag = 0; bag < cover.NumBags(); ++bag) {
    for (Vertex v : cover.AssignedVertices(bag)) {
      EXPECT_EQ(cover.AssignedBag(v), bag);
    }
    assigned_total += static_cast<int64_t>(cover.AssignedVertices(bag).size());
  }
  EXPECT_EQ(assigned_total, g.NumVertices());

  // BagsContaining matches membership, and Degree is the max.
  int64_t max_deg = 0;
  int64_t total = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (int64_t bag : cover.BagsContaining(v)) {
      EXPECT_TRUE(cover.InBag(bag, v));
    }
    max_deg = std::max(
        max_deg, static_cast<int64_t>(cover.BagsContaining(v).size()));
    total += static_cast<int64_t>(cover.BagsContaining(v).size());
  }
  EXPECT_EQ(cover.Degree(), max_deg);
  EXPECT_EQ(cover.TotalBagSize(), total);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoverPropertyTest,
    ::testing::Values(CoverParams{0, 1, 1}, CoverParams{0, 2, 2},
                      CoverParams{0, 4, 3}, CoverParams{1, 2, 4},
                      CoverParams{2, 2, 5}, CoverParams{2, 3, 6},
                      CoverParams{3, 2, 7}));

TEST(Cover, NextInBag) {
  GraphBuilder builder(10, 0);
  for (Vertex v = 0; v + 1 < 10; ++v) builder.AddEdge(v, v + 1);
  const ColoredGraph g = std::move(builder).Build();
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  const int64_t bag = cover.AssignedBag(5);
  const auto& members = cover.Bag(bag);
  EXPECT_EQ(cover.NextInBag(bag, members.front()), members.front());
  EXPECT_EQ(cover.NextInBag(bag, members.back() + 1), -1);
}

TEST(Cover, SingleVertexGraph) {
  GraphBuilder builder(1, 0);
  const ColoredGraph g = std::move(builder).Build();
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 3);
  EXPECT_EQ(cover.NumBags(), 1);
  EXPECT_EQ(cover.AssignedBag(0), 0);
}

TEST(Kernel, DefinitionHoldsOnPath) {
  GraphBuilder builder(12, 0);
  for (Vertex v = 0; v + 1 < 12; ++v) builder.AddEdge(v, v + 1);
  const ColoredGraph g = std::move(builder).Build();
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  BfsScratch scratch(g.NumVertices());
  for (int64_t bag = 0; bag < cover.NumBags(); ++bag) {
    for (int p = 0; p <= 3; ++p) {
      const std::vector<Vertex> kernel = ComputeKernel(g, cover, bag, p);
      for (Vertex a = 0; a < g.NumVertices(); ++a) {
        const auto ball = scratch.Neighborhood(g, a, p);
        bool inside = cover.InBag(bag, a);
        for (Vertex b : ball) inside = inside && cover.InBag(bag, b);
        EXPECT_EQ(std::binary_search(kernel.begin(), kernel.end(), a), inside)
            << "bag=" << bag << " p=" << p << " a=" << a;
      }
    }
  }
}

class KernelPropertyTest : public ::testing::TestWithParam<CoverParams> {};

TEST_P(KernelPropertyTest, MatchesBruteForce) {
  const CoverParams params = GetParam();
  Rng rng(params.seed + 100);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, params.radius);
  const int p = params.radius;
  const auto kernels = ComputeAllKernels(g, cover, p);
  BfsScratch scratch(g.NumVertices());
  // Spot-check a sample of bags exhaustively.
  const int64_t step = std::max<int64_t>(1, cover.NumBags() / 10);
  for (int64_t bag = 0; bag < cover.NumBags(); bag += step) {
    for (Vertex a : cover.Bag(bag)) {
      const auto ball = scratch.Neighborhood(g, a, p);
      bool inside = true;
      for (Vertex b : ball) inside = inside && cover.InBag(bag, b);
      EXPECT_EQ(std::binary_search(kernels[bag].begin(), kernels[bag].end(),
                                   a),
                inside)
          << "bag=" << bag << " a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelPropertyTest,
    ::testing::Values(CoverParams{0, 2, 11}, CoverParams{1, 2, 12},
                      CoverParams{2, 2, 13}, CoverParams{3, 1, 14}));

TEST(Kernel, ZeroRadiusKernelIsBag) {
  Rng rng(4);
  const ColoredGraph g = gen::RandomTree(50, 0, {0, 0.0}, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  for (int64_t bag = 0; bag < cover.NumBags(); ++bag) {
    const auto members = cover.Bag(bag);
    EXPECT_EQ(ComputeKernel(g, cover, bag, 0),
              std::vector<Vertex>(members.begin(), members.end()));
  }
}

}  // namespace
}  // namespace nwd
