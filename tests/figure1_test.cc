// Register-level reproduction of Figure 1 (and the removal walk-through of
// Appendix 7.3) of the paper.
//
// Setup: n = 27, eps = 1/3, so d = 3, h = 3; f is the identity on
// {2, 4, 5, 19, 24, 25}, inserted in ascending order.
//
// Our allocation then places (root at R_1..R_4, nodes of d+1 = 4 registers):
//   prefix "0"  -> R_5..R_8      prefix "00" -> R_9..R_12
//   prefix "01" -> R_13..R_16    prefix "2"  -> R_17..R_20
//   prefix "20" -> R_21..R_24    prefix "22" -> R_25..R_28
//
// The caption's spot checks that are layout-independent all hold: R_1 is
// (1, 5) because the first child of the root starts at R_5; R_2 is (0, 19)
// because no key starts with digit 1 and 19 is the next key; R_8 holds
// (-1, 1) pointing back at the parent cell R_1. (The caption also places
// key 5's leaf at R_19 — under insertion in ascending order the "01" node
// lands at R_13..R_16 instead, so that leaf is R_15; the caption's register
// arithmetic is inconsistent with any single insertion order, see
// EXPERIMENTS.md F1.)

#include <gtest/gtest.h>

#include "storing/trie.h"

namespace nwd {
namespace {

StoringTrie BuildFigure1() {
  StoringTrie trie(1, 27, 1.0 / 3.0);
  for (int64_t v : {2, 4, 5, 19, 24, 25}) trie.Insert({v}, v);
  return trie;
}

TEST(Figure1, Parameters) {
  const StoringTrie trie = BuildFigure1();
  EXPECT_EQ(trie.degree(), 3);                  // d = 27^(1/3)
  EXPECT_EQ(trie.height_per_coordinate(), 3);   // h = 1/eps
  EXPECT_EQ(trie.size(), 6);
  // Root (4 registers) + 6 inner nodes + register 0 = 29 registers.
  EXPECT_EQ(trie.RegistersUsed(), 29);
}

TEST(Figure1, CaptionSpotChecks) {
  const StoringTrie trie = BuildFigure1();
  // "R_1 ... content (1, 5) because the first child of the root is not a
  //  leaf and the first register representing it is R_5."
  EXPECT_EQ(trie.DebugRegister(1).delta, 1);
  EXPECT_EQ(trie.DebugRegister(1).payload, 5);
  // "The second register representing the root is R_2 whose content is
  //  (0, 19)": no stored key has first digit 1; the next key is 19.
  EXPECT_EQ(trie.DebugRegister(2).delta, 0);
  EXPECT_EQ(trie.DebugRegister(2).payload, trie.DebugRankOf({19}));
  // "(-1, 1) because R_1 is the first register encoding [its parent cell]".
  EXPECT_EQ(trie.DebugRegister(8).delta, -1);
  EXPECT_EQ(trie.DebugRegister(8).payload, 1);
}

TEST(Figure1, FullRegisterLayout) {
  const StoringTrie trie = BuildFigure1();
  const auto reg = [&trie](int64_t i) { return trie.DebugRegister(i); };
  // Register 0: allocation frontier.
  EXPECT_EQ(reg(0).payload, 29);
  // Root: children "0" (node), digit-1 empty -> 19, "2" (node).
  EXPECT_EQ(reg(3).delta, 1);
  EXPECT_EQ(reg(3).payload, 17);
  EXPECT_EQ(reg(4).delta, -1);  // root has no parent
  // Node "0" at R_5..R_8: "00" node, "01" node, "02" empty -> 19.
  EXPECT_EQ(reg(5).delta, 1);
  EXPECT_EQ(reg(5).payload, 9);
  EXPECT_EQ(reg(6).delta, 1);
  EXPECT_EQ(reg(6).payload, 13);
  EXPECT_EQ(reg(7).delta, 0);
  EXPECT_EQ(reg(7).payload, 19);
  // Node "00" at R_9..R_12: 000 -> 2, 001 -> 2, 002 = key 2.
  EXPECT_EQ(reg(9).delta, 0);
  EXPECT_EQ(reg(9).payload, 2);
  EXPECT_EQ(reg(10).delta, 0);
  EXPECT_EQ(reg(10).payload, 2);
  EXPECT_EQ(reg(11).delta, 1);
  EXPECT_EQ(reg(11).payload, 2);  // f(2) = 2
  EXPECT_EQ(reg(12).delta, -1);
  EXPECT_EQ(reg(12).payload, 5);
  // Node "01" at R_13..R_16: 010 -> 4, 011 = key 4, 012 = key 5.
  EXPECT_EQ(reg(13).delta, 0);
  EXPECT_EQ(reg(13).payload, 4);
  EXPECT_EQ(reg(14).delta, 1);
  EXPECT_EQ(reg(14).payload, 4);  // f(4) = 4
  EXPECT_EQ(reg(15).delta, 1);
  EXPECT_EQ(reg(15).payload, 5);  // f(5) = 5 — the caption's "(1, f(5))"
  EXPECT_EQ(reg(16).delta, -1);
  EXPECT_EQ(reg(16).payload, 6);
  // Node "2" at R_17..R_20: "20" node, digit-1 empty -> 24, "22" node.
  EXPECT_EQ(reg(17).delta, 1);
  EXPECT_EQ(reg(17).payload, 21);
  EXPECT_EQ(reg(18).delta, 0);
  EXPECT_EQ(reg(18).payload, 24);
  EXPECT_EQ(reg(19).delta, 1);
  EXPECT_EQ(reg(19).payload, 25);
  // Node "20" at R_21..R_24: 200 -> 19, 201 = key 19, 202 -> 24.
  EXPECT_EQ(reg(21).payload, 19);
  EXPECT_EQ(reg(22).delta, 1);
  EXPECT_EQ(reg(22).payload, 19);  // f(19) = 19
  EXPECT_EQ(reg(23).delta, 0);
  EXPECT_EQ(reg(23).payload, 24);
  // Node "22" at R_25..R_28: 220 = key 24, 221 = key 25, 222 empty -> Null.
  EXPECT_EQ(reg(25).delta, 1);
  EXPECT_EQ(reg(25).payload, 24);
  EXPECT_EQ(reg(26).delta, 1);
  EXPECT_EQ(reg(26).payload, 25);
  EXPECT_EQ(reg(27).delta, 0);
  EXPECT_EQ(reg(27).payload, StoringTrie::kNullPayload);
}

TEST(Figure1, RemovalWalkthrough) {
  // Appendix 7.3: "consider the case where 19 must be removed ... We first
  // compute the surrounding elements of 19: 5 and 24 ... conclude that the
  // array stored in cells [of node "20"] is now irrelevant ... move the
  // content of the [last] array in its place ... and replace the value
  // (0, 19) by (0, 24)."
  StoringTrie trie(1, 27, 1.0 / 3.0);
  for (int64_t v : {2, 4, 5, 19, 24, 25}) trie.Insert({v}, v);
  trie.Erase({19});
  // One node (4 registers) was reclaimed.
  EXPECT_EQ(trie.RegistersUsed(), 25);
  // Every cell that previously pointed at 19 now points at 24:
  EXPECT_EQ(trie.DebugRegister(2).payload, 24);  // root digit 1
  EXPECT_EQ(trie.DebugRegister(7).payload, 24);  // "02"
  // The "22" node was relocated into the hole left by "20" (R_21..R_24);
  // node "2"'s digit-0 cell is empty now and its digit-2 cell points there.
  EXPECT_EQ(trie.DebugRegister(17).delta, 0);
  EXPECT_EQ(trie.DebugRegister(17).payload, 24);
  EXPECT_EQ(trie.DebugRegister(19).delta, 1);
  EXPECT_EQ(trie.DebugRegister(19).payload, 21);
  // Semantics after the removal.
  EXPECT_FALSE(trie.Contains({19}));
  EXPECT_EQ(trie.Lookup({6}).successor, Tuple{24});
  EXPECT_EQ(trie.Predecessor({24}), std::optional<Tuple>(Tuple{5}));
}

}  // namespace
}  // namespace nwd
