// Bit-identity of the flat CSR cover/kernel plane against a retained
// reference implementation (the pre-CSR heap-vector structures and
// stamp-probing kernel computer). The reference mirrors the production
// charging semantics exactly — per-vertex/per-edge work accumulated in
// BfsScratch::kChargeChunk batches — so budget-tripped builds must agree
// too: same bags opened before the trip, same partial assignment, and the
// canonical all-empty kernel shape under both the serial and parallel
// ComputeAllKernels paths at every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cover/kernel.h"
#include "cover/neighborhood_cover.h"
#include "graph/bfs.h"
#include "graph/stats.h"
#include "tests/property_common.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nwd {
namespace {

// Reference cover: the seed's vector-of-vectors structures, built with the
// same greedy reverse-degeneracy sweep and the same incremental charging
// discipline as NeighborhoodCover::Build.
struct ReferenceCover {
  bool complete = false;
  std::vector<std::vector<Vertex>> bags;
  std::vector<Vertex> centers;
  std::vector<int64_t> assigned_bag;
  std::vector<std::vector<Vertex>> assigned_vertices;
  std::vector<std::vector<int64_t>> bags_containing;
  int64_t degree = 0;
  int64_t total_bag_size = 0;
};

// BFS to `radius` with the same visit order as BfsScratch (FIFO, sorted
// adjacency) and the same chunked charging; returns false on a trip.
bool ReferenceBall(const ColoredGraph& g, Vertex source, int radius,
                   const ResourceBudget* budget, std::vector<Vertex>* ball,
                   std::vector<int64_t>* dist) {
  dist->assign(static_cast<size_t>(g.NumVertices()), -1);
  std::vector<Vertex> queue{source};
  (*dist)[source] = 0;
  int64_t pending = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const int64_t d = (*dist)[v];
    if (d >= radius) continue;
    if (budget != nullptr && pending >= BfsScratch::kChargeChunk) {
      if (!budget->ChargeWork(pending)) return false;
      pending = 0;
    }
    ++pending;
    for (Vertex u : g.Neighbors(v)) {
      if (budget != nullptr && pending >= BfsScratch::kChargeChunk) {
        if (!budget->ChargeWork(pending)) return false;
        pending = 0;
      }
      ++pending;
      if ((*dist)[u] == -1) {
        (*dist)[u] = d + 1;
        queue.push_back(u);
      }
    }
  }
  if (budget != nullptr && pending > 0 && !budget->ChargeWork(pending)) {
    return false;
  }
  *ball = queue;
  std::sort(ball->begin(), ball->end());
  return true;
}

ReferenceCover BuildReferenceCover(const ColoredGraph& g, int radius,
                                   const ResourceBudget* budget) {
  ReferenceCover cover;
  const int64_t n = g.NumVertices();
  cover.assigned_bag.assign(static_cast<size_t>(n), -1);
  cover.bags_containing.assign(static_cast<size_t>(n), {});
  if (n == 0) {
    cover.complete = true;
    return cover;
  }
  const DegeneracyResult degeneracy = DegeneracyOrder(g);
  std::vector<Vertex> order(degeneracy.order.rbegin(),
                            degeneracy.order.rend());
  std::vector<Vertex> ball;
  std::vector<int64_t> dist;
  for (Vertex center : order) {
    if (cover.assigned_bag[center] != -1) continue;
    const int64_t bag_id = static_cast<int64_t>(cover.bags.size());
    if (!ReferenceBall(g, center, 2 * radius, budget, &ball, &dist)) {
      return cover;  // tripped: bag not opened, complete stays false
    }
    std::vector<Vertex> assigned;
    for (Vertex u : ball) {
      if (dist[u] <= radius && cover.assigned_bag[u] == -1) {
        cover.assigned_bag[u] = bag_id;
        assigned.push_back(u);
      }
    }
    for (Vertex u : ball) cover.bags_containing[u].push_back(bag_id);
    cover.total_bag_size += static_cast<int64_t>(ball.size());
    cover.bags.push_back(ball);
    cover.centers.push_back(center);
    cover.assigned_vertices.push_back(std::move(assigned));
  }
  for (Vertex v = 0; v < n; ++v) {
    cover.degree = std::max(
        cover.degree,
        static_cast<int64_t>(cover.bags_containing[v].size()));
  }
  cover.complete = true;
  return cover;
}

// Reference kernel: the seed's stamp-probing boundary scan + multi-source
// BFS, one bag at a time.
std::vector<Vertex> ReferenceKernel(const ColoredGraph& g,
                                    const std::vector<Vertex>& bag, int p) {
  const int64_t n = g.NumVertices();
  std::vector<char> member(static_cast<size_t>(n), 0);
  std::vector<int64_t> dist(static_cast<size_t>(n), -1);
  for (Vertex v : bag) member[v] = 1;
  std::vector<Vertex> queue;
  for (Vertex v : bag) {
    for (Vertex u : g.Neighbors(v)) {
      if (!member[u]) {
        dist[v] = 0;
        queue.push_back(v);
        break;
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const int64_t d = dist[v];
    if (d + 1 >= p) continue;
    for (Vertex u : g.Neighbors(v)) {
      if (member[u] && dist[u] == -1) {
        dist[u] = d + 1;
        queue.push_back(u);
      }
    }
  }
  std::vector<Vertex> kernel;
  for (Vertex v : bag) {
    const bool reached = dist[v] != -1 && dist[v] + 1 <= p;
    if (!reached) kernel.push_back(v);
  }
  return kernel;
}

void ExpectCoversEqual(const NeighborhoodCover& cover,
                       const ReferenceCover& ref, int64_t n) {
  ASSERT_EQ(cover.complete(), ref.complete);
  ASSERT_EQ(cover.NumBags(), static_cast<int64_t>(ref.bags.size()));
  for (int64_t b = 0; b < cover.NumBags(); ++b) {
    EXPECT_EQ(cover.Center(b), ref.centers[static_cast<size_t>(b)]);
    const auto bag = cover.Bag(b);
    ASSERT_EQ(std::vector<Vertex>(bag.begin(), bag.end()),
              ref.bags[static_cast<size_t>(b)])
        << "bag " << b;
  }
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(cover.AssignedBag(v), ref.assigned_bag[v]) << "vertex " << v;
  }
  if (!ref.complete) return;  // per-bag CSR indexes exist only when complete
  EXPECT_EQ(cover.Degree(), ref.degree);
  EXPECT_EQ(cover.TotalBagSize(), ref.total_bag_size);
  for (int64_t b = 0; b < cover.NumBags(); ++b) {
    const auto assigned = cover.AssignedVertices(b);
    ASSERT_EQ(std::vector<Vertex>(assigned.begin(), assigned.end()),
              ref.assigned_vertices[static_cast<size_t>(b)])
        << "assigned list of bag " << b;
  }
  for (Vertex v = 0; v < n; ++v) {
    const auto containing = cover.BagsContaining(v);
    ASSERT_EQ(std::vector<int64_t>(containing.begin(), containing.end()),
              ref.bags_containing[v])
        << "bags containing " << v;
  }
}

struct ParityParams {
  int graph_kind;  // property_common classes: 0 tree, 1 bdeg, 2 grid
  int64_t n;
  int radius;
  uint64_t seed;
};

class CoverParityTest : public ::testing::TestWithParam<ParityParams> {};

TEST_P(CoverParityTest, CsrMatchesReferenceAtEveryThreadCount) {
  const ParityParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g =
      testing_common::RandomGraph(params.graph_kind, params.n, &rng);
  const int64_t n = g.NumVertices();

  const NeighborhoodCover cover = NeighborhoodCover::Build(g, params.radius);
  const ReferenceCover ref = BuildReferenceCover(g, params.radius, nullptr);
  ExpectCoversEqual(cover, ref, n);

  std::vector<std::vector<Vertex>> ref_kernels;
  ref_kernels.reserve(ref.bags.size());
  for (const std::vector<Vertex>& bag : ref.bags) {
    ref_kernels.push_back(ReferenceKernel(g, bag, params.radius));
  }
  ASSERT_EQ(ComputeAllKernels(g, cover, params.radius), ref_kernels);
  for (int threads = 1; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    ASSERT_EQ(ComputeAllKernels(g, cover, params.radius, &pool), ref_kernels)
        << "threads=" << threads;
  }
}

TEST_P(CoverParityTest, BudgetTrippedBuildsAgree) {
  const ParityParams params = GetParam();
  Rng rng(params.seed + 1000);
  const ColoredGraph g =
      testing_common::RandomGraph(params.graph_kind, params.n, &rng);
  const int64_t n = g.NumVertices();

  // Probe the full build cost, then cap at half of it so the trip lands
  // mid-sweep (work-cap trips are deterministic: total charged work does
  // not depend on timing).
  ResourceBudget probe;
  const NeighborhoodCover full = NeighborhoodCover::Build(g, params.radius,
                                                          &probe);
  ASSERT_TRUE(full.complete());
  ResourceBudgetOptions capped;
  capped.max_edge_work = std::max<int64_t>(1, probe.work_charged() / 2);

  const ResourceBudget budget_csr(capped);
  const NeighborhoodCover tripped =
      NeighborhoodCover::Build(g, params.radius, &budget_csr);
  ASSERT_TRUE(budget_csr.Exceeded());
  ASSERT_FALSE(tripped.complete());

  const ResourceBudget budget_ref(capped);
  const ReferenceCover ref =
      BuildReferenceCover(g, params.radius, &budget_ref);
  ASSERT_FALSE(ref.complete);
  EXPECT_EQ(budget_csr.work_charged(), budget_ref.work_charged());
  ExpectCoversEqual(tripped, ref, n);

  // Tripped kernels collapse to the same all-empty shape on the serial
  // path and on every pool width.
  const std::vector<std::vector<Vertex>> empty_rows(
      static_cast<size_t>(full.NumBags()));
  ResourceBudgetOptions kernel_cap;
  kernel_cap.max_edge_work = std::max<int64_t>(1, full.TotalBagSize() / 2);
  {
    const ResourceBudget budget(kernel_cap);
    ASSERT_EQ(ComputeAllKernels(g, full, params.radius, &budget), empty_rows);
    ASSERT_TRUE(budget.Exceeded());
  }
  for (int threads = 1; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    const ResourceBudget budget(kernel_cap);
    ASSERT_EQ(ComputeAllKernels(g, full, params.radius, &pool, &budget),
              empty_rows)
        << "threads=" << threads;
    ASSERT_TRUE(budget.Exceeded());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverParityTest,
    ::testing::Values(ParityParams{0, 300, 2, 1}, ParityParams{0, 500, 1, 2},
                      ParityParams{1, 300, 2, 3}, ParityParams{1, 450, 3, 4},
                      ParityParams{2, 320, 2, 5}, ParityParams{2, 480, 1, 6},
                      ParityParams{3, 400, 2, 7},
                      ParityParams{4, 300, 2, 8}));

}  // namespace
}  // namespace nwd
