// The answering phase is concurrently callable (see probe_context.h): N
// threads firing Test/Next at one engine must produce bit-identical
// answers to a serial probe loop, in LNF mode and in the degraded/lazy
// fallback mode; the batch APIs must equal their serial loops; and the
// sharded parallel enumerator must reproduce the serial stream exactly
// (order, no duplicates) on several graph classes. The TSan twin of this
// binary (label: tsan) runs the same tests under ThreadSanitizer, which
// is what actually certifies the probe-context pool and the per-context
// counters as race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/ast.h"
#include "fo/builders.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "tests/property_common.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace nwd {
namespace {

using testing_common::RandomGraph;
using testing_common::RandomQuery;

std::vector<Tuple> EnumerateAll(const EnumerationEngine& engine) {
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> out;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    out.push_back(*t);
  }
  return out;
}

std::vector<Tuple> RandomProbes(const ColoredGraph& g, int arity, int count,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> probes;
  probes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Tuple t(static_cast<size_t>(arity));
    for (auto& v : t) {
      v = static_cast<Vertex>(
          rng.NextBounded(static_cast<uint64_t>(g.NumVertices())));
    }
    probes.push_back(std::move(t));
  }
  return probes;
}

// Serial reference answers, then the same probes fired from `threads`
// OS threads at once (each thread walks the whole probe list, so every
// probe is answered concurrently with itself and with all others).
void ExpectConcurrentAnswersMatchSerial(const EnumerationEngine& engine,
                                        const std::vector<Tuple>& probes,
                                        int threads) {
  std::vector<std::optional<Tuple>> expected_next(probes.size());
  std::vector<bool> expected_test(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    expected_next[i] = engine.Next(probes[i]);
    expected_test[i] = engine.Test(probes[i]);
  }

  std::vector<int> mismatches(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      // Stagger the start index so threads collide on different probes.
      for (size_t step = 0; step < probes.size(); ++step) {
        const size_t i =
            (step + static_cast<size_t>(w) * 7) % probes.size();
        if (engine.Next(probes[i]) != expected_next[i]) ++mismatches[w];
        if (engine.Test(probes[i]) != expected_test[i]) ++mismatches[w];
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (int w = 0; w < threads; ++w) {
    EXPECT_EQ(mismatches[w], 0) << "thread " << w << " saw diverging answers";
  }
}

TEST(ConcurrentAnswerTest, LnfModeBitIdenticalAcrossThreads) {
  Rng rng(2024);
  const ColoredGraph g = gen::RandomTree(140, 0, {2, 0.3}, &rng);
  fo::Query q;
  q.formula = fo::And(fo::DistLeq(0, 1, 2), fo::DistLeq(1, 2, 2));
  q.free_vars = {0, 1, 2};
  q.var_names = {"x", "y", "z"};
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const EnumerationEngine engine(g, q, options);
  ASSERT_FALSE(engine.used_fallback());
  const std::vector<Tuple> probes = RandomProbes(g, 3, 40, 99);
  ExpectConcurrentAnswersMatchSerial(engine, probes, 4);
}

TEST(ConcurrentAnswerTest, RandomQueriesBitIdenticalAcrossThreads) {
  Rng rng(7);
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 4; ++round) {
    const ColoredGraph g = RandomGraph(round, 45, &rng);
    const fo::Query q = RandomQuery(2, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    const std::vector<Tuple> probes =
        RandomProbes(g, 2, 30, 1000 + static_cast<uint64_t>(round));
    ExpectConcurrentAnswersMatchSerial(engine, probes, 3);
  }
}

TEST(ConcurrentAnswerTest, DegradedModeBitIdenticalAcrossThreads) {
  // A fault-injected trip degrades the engine to the lazy baseline, whose
  // evaluators keep scratch; concurrent probes must serialize correctly.
  Rng rng(11);
  const ColoredGraph g = gen::RandomTree(90, 0, {2, 0.3}, &rng);
  fo::Query q;
  q.formula = fo::DistLeq(0, 1, 2);
  q.free_vars = {0, 1};
  q.var_names = {"x", "y"};
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  fault_injection::ScopedFault fault("engine/skips");
  const EnumerationEngine engine(g, q, options);
  ASSERT_TRUE(engine.stats().degraded);
  const std::vector<Tuple> probes = RandomProbes(g, 2, 25, 77);
  ExpectConcurrentAnswersMatchSerial(engine, probes, 4);
}

TEST(BatchAnswerTest, BatchesEqualSerialLoops) {
  Rng rng(31);
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 4; ++round) {
    const ColoredGraph g = RandomGraph(round, 40, &rng);
    const fo::Query q = RandomQuery(2, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    const std::vector<Tuple> probes =
        RandomProbes(g, 2, 37, 500 + static_cast<uint64_t>(round));
    std::vector<uint8_t> expected_test;
    std::vector<std::optional<Tuple>> expected_next;
    for (const Tuple& probe : probes) {
      expected_test.push_back(engine.Test(probe) ? 1 : 0);
      expected_next.push_back(engine.Next(probe));
    }
    for (const int threads : {1, 2, 4}) {
      EXPECT_EQ(engine.TestBatch(probes, threads), expected_test)
          << "threads=" << threads << " query: " << fo::ToString(q);
      EXPECT_EQ(engine.NextBatch(probes, threads), expected_next)
          << "threads=" << threads << " query: " << fo::ToString(q);
    }
  }
}

TEST(EnumerateParallelTest, MatchesSerialStreamOnThreeGraphClasses) {
  Rng rng(63);
  fo::Query q;
  q.formula = fo::And(fo::Not(fo::DistLeq(0, 1, 1)), fo::DistLeq(0, 1, 3));
  q.free_vars = {0, 1};
  q.var_names = {"x", "y"};
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const std::vector<ColoredGraph> graphs = []() {
    Rng graph_rng(64);
    std::vector<ColoredGraph> out;
    out.push_back(gen::RandomTree(130, 0, {2, 0.3}, &graph_rng));
    out.push_back(gen::Grid(9, 13, {2, 0.3}, &graph_rng));
    out.push_back(gen::Caterpillar(40, 2, {2, 0.3}, &graph_rng));
    return out;
  }();
  for (const ColoredGraph& g : graphs) {
    const EnumerationEngine engine(g, q, options);
    ASSERT_FALSE(engine.used_fallback()) << g.DebugString();
    const std::vector<Tuple> expected = EnumerateAll(engine);
    for (const int threads : {1, 2, 4, 8}) {
      const std::vector<Tuple> got = engine.EnumerateParallel(threads);
      EXPECT_EQ(got, expected)
          << "threads=" << threads << " on " << g.DebugString();
    }
    // Limits slice the same prefix (and a sorted stream has no dupes).
    const int64_t limit =
        std::min<int64_t>(17, static_cast<int64_t>(expected.size()));
    const std::vector<Tuple> limited = engine.EnumerateParallel(4, limit);
    EXPECT_EQ(limited,
              std::vector<Tuple>(expected.begin(), expected.begin() + limit));
    EXPECT_TRUE(std::is_sorted(
        expected.begin(), expected.end(),
        [](const Tuple& a, const Tuple& b) { return LexCompare(a, b) < 0; }));
  }
}

TEST(EnumerateParallelTest, FallbackModesMatchSerialToo) {
  Rng rng(81);
  // Materialized fallback (small graph) and lazy fallback (degraded).
  const ColoredGraph small = RandomGraph(1, 30, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  EngineOptions options;
  options.naive_cutoff = 64;  // force materialization
  const EnumerationEngine materialized(small, q, options);
  ASSERT_TRUE(materialized.used_fallback());
  EXPECT_EQ(materialized.EnumerateParallel(4), EnumerateAll(materialized));

  EngineOptions lnf_options;
  lnf_options.naive_cutoff = 10;
  lnf_options.oracle.small_cutoff = 8;
  fo::Query dist_q;
  dist_q.formula = fo::DistLeq(0, 1, 2);
  dist_q.free_vars = {0, 1};
  dist_q.var_names = {"x", "y"};
  Rng tree_rng(82);
  const ColoredGraph tree = gen::RandomTree(80, 0, {2, 0.3}, &tree_rng);
  fault_injection::ScopedFault fault("engine/cover");
  const EnumerationEngine degraded(tree, dist_q, lnf_options);
  ASSERT_TRUE(degraded.stats().degraded);
  EXPECT_EQ(degraded.EnumerateParallel(4), EnumerateAll(degraded));
  EXPECT_EQ(degraded.EnumerateParallel(2, 5).size(), size_t{5});
}

TEST(ConcurrentAnswerTest, DrainAnswerStatsCountsProbes) {
  Rng rng(404);
  const ColoredGraph g = gen::RandomTree(120, 0, {2, 0.3}, &rng);
  fo::Query q;
  q.formula = fo::And(fo::DistLeq(0, 1, 2), fo::DistLeq(1, 2, 2));
  q.free_vars = {0, 1, 2};
  q.var_names = {"x", "y", "z"};
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const EnumerationEngine engine(g, q, options);
  ASSERT_FALSE(engine.used_fallback());
  engine.DrainAnswerStats();  // discard construction-time noise (none)

  const std::vector<Tuple> probes = RandomProbes(g, 3, 20, 5);
  for (const Tuple& probe : probes) {
    engine.Next(probe);
    engine.Test(probe);
  }
  AnswerCounters counters = engine.DrainAnswerStats();
  EXPECT_EQ(counters.probes_served, 40);
  EXPECT_GT(counters.descents, 0);
  EXPECT_GT(counters.ball_cache_misses, 0);  // ternary query hits Case II
  EXPECT_GE(counters.contexts, 1);

  // Drained means drained: a second drain starts from zero.
  counters = engine.DrainAnswerStats();
  EXPECT_EQ(counters.probes_served, 0);
  EXPECT_EQ(counters.descents, 0);

  // The pool grows to actual concurrency, not per probe.
  ExpectConcurrentAnswersMatchSerial(engine, probes, 4);
  counters = engine.DrainAnswerStats();
  EXPECT_GT(counters.probes_served, 0);
  EXPECT_LE(counters.contexts, 1 + 4 + 1);  // serial ref + 4 workers + slack
}

}  // namespace
}  // namespace nwd
