#include <gtest/gtest.h>

#include "enumerate/sentences.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace nwd {
namespace {

SentenceResult Check(const ColoredGraph& g, const char* text) {
  const fo::ParseResult r = fo::ParseSentence(text);
  EXPECT_TRUE(r.ok) << text << ": " << r.error;
  return CheckSentence(g, r.query.formula);
}

bool NaiveCheck(const ColoredGraph& g, const char* text) {
  const fo::ParseResult r = fo::ParseSentence(text);
  EXPECT_TRUE(r.ok) << text << ": " << r.error;
  fo::NaiveEvaluator eval(g);
  return !eval.AllSolutions(r.query).empty();
}

TEST(Sentences, GuardedLocalExistentials) {
  Rng rng(1);
  const ColoredGraph g = gen::RandomTree(300, 0, {2, 0.3}, &rng);
  const char* sentences[] = {
      "exists x. C0(x)",  // trivially guarded (no quantifier below)
      "exists x. C0(x) & (exists z. E(x, z) & C1(z))",
      "exists x. !(exists z. E(x, z))",  // an isolated vertex?
  };
  for (const char* text : sentences) {
    const SentenceResult result = Check(g, text);
    EXPECT_EQ(result.holds, NaiveCheck(g, text)) << text;
    EXPECT_FALSE(result.used_naive) << text;
  }
}

TEST(Sentences, IndependenceSentences) {
  Rng rng(2);
  const ColoredGraph g = gen::RandomTree(400, 0, {1, 0.3}, &rng);
  // Three scattered blue vertices — should exist on a 400-tree...
  const char* three =
      "exists a, b, c. !(dist(a,b) <= 4) & !(dist(a,c) <= 4) & "
      "!(dist(b,c) <= 4) & C0(a) & C0(b) & C0(c)";
  const SentenceResult result = Check(g, three);
  EXPECT_EQ(result.holds, NaiveCheck(g, three));
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.used_naive);
}

TEST(Sentences, IndependenceSentenceFailsOnSmallClique) {
  Rng rng(3);
  const ColoredGraph g = gen::Clique(8, {1, 1.0}, &rng);
  const char* two =
      "exists a, b. !(dist(a,b) <= 1) & C0(a) & C0(b)";
  const SentenceResult result = Check(g, two);
  EXPECT_FALSE(result.holds);
  EXPECT_EQ(result.holds, NaiveCheck(g, two));
}

TEST(Sentences, BooleanCombinations) {
  Rng rng(4);
  const ColoredGraph g = gen::Grid(10, 10, {2, 0.4}, &rng);
  const char* sentences[] = {
      "(exists x. C0(x)) & !(exists y. C1(y) & (exists z. E(y,z) & C0(z)))",
      "(exists x. C0(x)) | false",
      "!(exists x. C0(x) & C1(x)) | (exists x. C0(x))",
      "true & !(false)",
  };
  for (const char* text : sentences) {
    EXPECT_EQ(Check(g, text).holds, NaiveCheck(g, text)) << text;
  }
}

TEST(Sentences, ForallViaDualization) {
  GraphBuilder builder(5, 1);
  for (Vertex v = 0; v + 1 < 5; ++v) builder.AddEdge(v, v + 1);
  for (Vertex v = 0; v < 5; ++v) builder.SetColor(v, 0);
  const ColoredGraph g = std::move(builder).Build();
  // Every vertex is C0: holds.
  EXPECT_TRUE(Check(g, "forall x. C0(x)").holds);
  // Every vertex has a neighbor: holds on a path of length >= 1.
  EXPECT_TRUE(Check(g, "forall x. exists z. E(x, z)").holds);
}

TEST(Sentences, UnguardedFallsBackToNaiveButIsCorrect) {
  Rng rng(5);
  const ColoredGraph g = gen::RandomTree(30, 0, {2, 0.4}, &rng);
  // "exists two adjacent-colored vertices anywhere" — binary inner
  // quantifier, not unary-local, not a scatter pattern.
  const char* text = "exists x. exists y. E(x, y) & C0(x) & C1(y)";
  const SentenceResult result = Check(g, text);
  EXPECT_EQ(result.holds, NaiveCheck(g, text));
}

class SentenceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SentenceFuzz, ScatterSentencesMatchNaive) {
  Rng rng(50 + GetParam());
  const ColoredGraph g =
      gen::BoundedDegreeGraph(35, 4, 2.0, {1, 0.3}, &rng);
  for (int k = 2; k <= 3; ++k) {
    for (int sep : {1, 2}) {
      std::string text = "exists";
      for (int i = 0; i < k; ++i) {
        text += (i ? ", v" : " v") + std::to_string(i);
      }
      text += ".";
      bool first = true;
      for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
          text += std::string(first ? " " : " & ") + "!(dist(v" +
                  std::to_string(i) + ", v" + std::to_string(j) +
                  ") <= " + std::to_string(sep) + ")";
          first = false;
        }
      }
      for (int i = 0; i < k; ++i) {
        text += " & C0(v" + std::to_string(i) + ")";
      }
      const SentenceResult result = Check(g, text.c_str());
      EXPECT_EQ(result.holds, NaiveCheck(g, text.c_str())) << text;
      EXPECT_FALSE(result.used_naive) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SentenceFuzz, ::testing::Range(0, 5));

}  // namespace
}  // namespace nwd
