#include <gtest/gtest.h>

#include "enumerate/lnf.h"
#include "fo/builders.h"
#include "fo/parser.h"

namespace nwd {
namespace {

TEST(Lnf, DistanceQueryCompiles) {
  const Lnf lnf = CompileToLnf(fo::DistanceQuery(2));
  ASSERT_TRUE(lnf.supported);
  EXPECT_EQ(lnf.arity, 2);
  EXPECT_EQ(lnf.radius, 2);
  // Two distance types (near / far); only "near" satisfies the query, and
  // under "near" the atom dist <= 2 is decided true: exactly one case with
  // no residual literals.
  ASSERT_EQ(lnf.cases.size(), 1u);
  EXPECT_TRUE(lnf.cases[0].tau[0][1]);
  EXPECT_TRUE(lnf.cases[0].literals.empty());
  EXPECT_EQ(lnf.cases[0].components.size(), 1u);
}

TEST(Lnf, FarColorQueryCompiles) {
  // q(x,y) := dist(x,y) > 2 & C0(y): radius 2; the only satisfying tau is
  // "far" (no edge), with the color literal on position 1.
  const Lnf lnf = CompileToLnf(fo::FarColorQuery(2, 0));
  ASSERT_TRUE(lnf.supported);
  ASSERT_EQ(lnf.cases.size(), 1u);
  const LnfCase& c = lnf.cases[0];
  EXPECT_FALSE(c.tau[0][1]);
  EXPECT_EQ(c.components.size(), 2u);
  ASSERT_EQ(c.unary_literals[1].size(), 1u);
  EXPECT_TRUE(c.unary_literals[1][0].positive);
  EXPECT_EQ(c.unary_literals[1][0].atom.color, 0);
}

TEST(Lnf, MixedBoundsSplitIntoLiterals) {
  // dist(x,y) <= 1 | (dist(x,y) <= 3 & C0(x)): radius 3. Under the near
  // tau the dist <= 3 atom is decided, dist <= 1 stays live.
  const fo::ParseResult r =
      fo::ParseFormula("dist(x,y) <= 1 | (dist(x,y) <= 3 & C0(x))");
  ASSERT_TRUE(r.ok) << r.error;
  const Lnf lnf = CompileToLnf(r.query);
  ASSERT_TRUE(lnf.supported);
  EXPECT_EQ(lnf.radius, 3);
  // Near tau: assignments over {dist<=1, C0(x)}: (T,T),(T,F),(F,T) satisfy.
  // Far tau: everything false -> unsatisfied. So 3 cases.
  EXPECT_EQ(lnf.cases.size(), 3u);
  for (const LnfCase& c : lnf.cases) {
    EXPECT_TRUE(c.tau[0][1]);
  }
}

TEST(Lnf, CasesAreMutuallyExclusiveByConstruction) {
  const fo::ParseResult r =
      fo::ParseFormula("E(x,y) | (C0(x) & dist(x,y) <= 2)");
  ASSERT_TRUE(r.ok);
  const Lnf lnf = CompileToLnf(r.query);
  ASSERT_TRUE(lnf.supported);
  // Within one tau, any two cases must differ on some literal's sign.
  for (size_t i = 0; i < lnf.cases.size(); ++i) {
    for (size_t j = i + 1; j < lnf.cases.size(); ++j) {
      if (lnf.cases[i].tau != lnf.cases[j].tau) continue;
      bool differ = false;
      for (const LnfLiteral& a : lnf.cases[i].literals) {
        for (const LnfLiteral& b : lnf.cases[j].literals) {
          if (a.atom == b.atom && a.positive != b.positive) differ = true;
        }
      }
      EXPECT_TRUE(differ) << "cases " << i << " and " << j
                          << " share tau but no opposing literal";
    }
  }
}

TEST(Lnf, CrossComponentAtomsAreDecided) {
  const Lnf lnf = CompileToLnf(fo::TwoFarOneColorQuery(2, 0));
  ASSERT_TRUE(lnf.supported);
  for (const LnfCase& c : lnf.cases) {
    for (const LnfLiteral& lit : c.literals) {
      if (lit.atom.kind == LnfAtom::Kind::kColor) continue;
      // Binary literals never straddle components.
      EXPECT_EQ(c.component_of[lit.atom.pos1],
                c.component_of[lit.atom.pos2]);
    }
  }
}

TEST(Lnf, QuantifiedQueriesAreUnsupported) {
  const fo::ParseResult r = fo::ParseFormula("exists z. E(x, z) & E(z, y)");
  ASSERT_TRUE(r.ok);
  const Lnf lnf = CompileToLnf(r.query);
  EXPECT_FALSE(lnf.supported);
  EXPECT_FALSE(lnf.unsupported_reason.empty());
}

TEST(Lnf, SentencesAreUnsupported) {
  const fo::ParseResult r = fo::ParseSentence("exists x, y. E(x, y)");
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(CompileToLnf(r.query).supported);
}

TEST(Lnf, EqualityQuery) {
  const fo::ParseResult r = fo::ParseFormula("x = y | E(x, y)");
  ASSERT_TRUE(r.ok);
  const Lnf lnf = CompileToLnf(r.query);
  ASSERT_TRUE(lnf.supported);
  EXPECT_EQ(lnf.radius, 1);
  // Only the near tau can satisfy either disjunct.
  for (const LnfCase& c : lnf.cases) {
    EXPECT_TRUE(c.tau[0][1]);
  }
}

TEST(Lnf, DescribeIsInformative) {
  const Lnf lnf = CompileToLnf(fo::FarColorQuery(2, 0));
  const std::string description = DescribeLnf(lnf);
  EXPECT_NE(description.find("arity 2"), std::string::npos);
  EXPECT_NE(description.find("radius 2"), std::string::npos);
  EXPECT_NE(description.find("C0(#1)"), std::string::npos);
  EXPECT_NE(description.find("components={{0} {1}}"), std::string::npos);

  const fo::ParseResult quantified =
      fo::ParseFormula("exists z. E(x, z) & E(z, y)");
  ASSERT_TRUE(quantified.ok);
  const std::string unsupported =
      DescribeLnf(CompileToLnf(quantified.query));
  EXPECT_NE(unsupported.find("unsupported"), std::string::npos);
}

TEST(Lnf, TernaryComponentsOrderedByMinimum) {
  const Lnf lnf = CompileToLnf(fo::TwoFarOneColorQuery(2, 0));
  ASSERT_TRUE(lnf.supported);
  for (const LnfCase& c : lnf.cases) {
    for (size_t i = 1; i < c.components.size(); ++i) {
      EXPECT_LT(c.components[i - 1][0], c.components[i][0]);
    }
    // binary_literals_at groups by max position.
    for (int pos = 0; pos < lnf.arity; ++pos) {
      for (const LnfLiteral& lit : c.binary_literals_at[pos]) {
        EXPECT_EQ(std::max(lit.atom.pos1, lit.atom.pos2), pos);
      }
    }
  }
}

}  // namespace
}  // namespace nwd
