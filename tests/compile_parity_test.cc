// Compiled-vs-interpreted parity: the bytecode executor must be
// bit-identical to the interpreted descent on every answer surface —
// Test, Next, serial and parallel enumeration — across random queries and
// random graphs from every generator class, with the answer-path fault
// armed, on budget-tripped (degraded) engines, and across live epoch
// swaps in the serving daemon. The interpreter is the oracle; any
// divergence is a compiler or executor bug, never a tie to break.
//
// Runs under the TSan and ASan twins too (ctest -L tsan / -L asan): the
// compiled programs are shared immutably across probe threads, and the
// per-op hit counters are the only mutation.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compile/program.h"
#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/wire.h"
#include "tests/property_common.h"
#include "util/fault_injection.h"
#include "util/lex.h"
#include "util/rng.h"

namespace nwd {
namespace {

using testing_common::RandomGraph;
using testing_common::RandomQuery;

std::vector<Tuple> Enumerate(const EnumerationEngine& engine) {
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> out;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    out.push_back(*t);
  }
  return out;
}

Tuple RandomTuple(const ColoredGraph& g, int arity, Rng* rng) {
  Tuple t;
  for (int i = 0; i < arity; ++i) {
    t.push_back(static_cast<Vertex>(
        rng->NextBounded(static_cast<uint64_t>(g.NumVertices()))));
  }
  return t;
}

// Asserts every answer surface of `compiled` is bit-identical to
// `interp`'s. Returns void so ASSERT_* can bail out of the caller's round.
void ExpectParity(const EnumerationEngine& compiled,
                  const EnumerationEngine& interp, const ColoredGraph& g,
                  const fo::Query& q, Rng* rng) {
  const std::string label = fo::ToString(q) + " on " + g.DebugString();
  ASSERT_EQ(Enumerate(compiled), Enumerate(interp)) << label;
  ASSERT_EQ(compiled.EnumerateParallel(3), interp.EnumerateParallel(3))
      << label;
  const int arity = compiled.arity();
  for (int trial = 0; trial < 60; ++trial) {
    const Tuple t = RandomTuple(g, arity, rng);
    ASSERT_EQ(compiled.Test(t), interp.Test(t))
        << label << " test tuple " << serve::FormatTuple(t);
    ASSERT_EQ(compiled.Next(t), interp.Next(t))
        << label << " next tuple " << serve::FormatTuple(t);
  }
}

class CompileParity : public ::testing::TestWithParam<int> {};

// The core sweep: random binary/ternary queries on random graphs, the
// compiled engine against the interpreter with identical options.
TEST_P(CompileParity, RandomQueriesRandomGraphs) {
  Rng rng(7000 + GetParam());
  EngineOptions compiled_options;
  compiled_options.naive_cutoff = 10;
  compiled_options.oracle.small_cutoff = 8;
  EngineOptions interp_options = compiled_options;
  interp_options.use_compiled_queries = false;

  int compiled_rounds = 0;
  for (int round = 0; round < 4; ++round) {
    const int arity = (round % 2 == 0) ? 2 : 3;
    const ColoredGraph g =
        RandomGraph(round + GetParam(), arity == 2 ? 45 : 24, &rng);
    const fo::Query q = RandomQuery(arity, 2, &rng);
    const EnumerationEngine compiled(g, q, compiled_options);
    const EnumerationEngine interp(g, q, interp_options);
    EXPECT_FALSE(interp.stats().compiled);
    if (compiled.stats().compiled) {
      ++compiled_rounds;
      ASSERT_NE(compiled.compiled_query(), nullptr);
    } else {
      // The lowering may decline a query; it must say why.
      EXPECT_FALSE(compiled.stats().not_compiled_reason.empty());
    }
    ExpectParity(compiled, interp, g, q, &rng);
  }
  // A sweep that never exercised the compiled path would prove nothing.
  EXPECT_GT(compiled_rounds, 0);
}

// The answer-path fault forces the compiled executor's ball-cache bypass
// (AnchorBall's fresh-BFS route); answers must not move.
TEST_P(CompileParity, BallCacheFaultIsBehaviorPreserving) {
  Rng rng(7700 + GetParam());
  EngineOptions compiled_options;
  compiled_options.naive_cutoff = 10;
  compiled_options.oracle.small_cutoff = 8;
  EngineOptions interp_options = compiled_options;
  interp_options.use_compiled_queries = false;

  const ColoredGraph g = RandomGraph(GetParam(), 45, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  const EnumerationEngine compiled(g, q, compiled_options);
  const EnumerationEngine interp(g, q, interp_options);
  fault_injection::ScopedFault fault("answer/ball_cache",
                                     fault_injection::Mode::kEveryHit);
  ExpectParity(compiled, interp, g, q, &rng);
}

// A budget trip degrades the engine to the lazy baseline and discards the
// compiled program (it borrows the dropped case lists); the degraded
// engine must still agree with an untripped interpreter.
TEST_P(CompileParity, DegradedEngineDropsProgramAndStaysIdentical) {
  Rng rng(8400 + GetParam());
  EngineOptions tripped_options;
  tripped_options.naive_cutoff = 10;
  tripped_options.oracle.small_cutoff = 8;
  tripped_options.budget.max_edge_work = 1;
  EngineOptions clean_interp_options;
  clean_interp_options.naive_cutoff = 10;
  clean_interp_options.oracle.small_cutoff = 8;
  clean_interp_options.use_compiled_queries = false;

  const ColoredGraph g = RandomGraph(GetParam(), 45, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  const EnumerationEngine tripped(g, q, tripped_options);
  const EnumerationEngine interp(g, q, clean_interp_options);
  ASSERT_TRUE(tripped.stats().degraded) << "work cap never tripped";
  EXPECT_FALSE(tripped.stats().compiled);
  EXPECT_EQ(tripped.compiled_query(), nullptr);
  ExpectParity(tripped, interp, g, q, &rng);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompileParity, ::testing::Range(0, 4));

// NWD_NO_COMPILE is the operational kill switch: it must disable
// compilation with an attributed reason and, trivially, stay bit-identical
// (it *is* the interpreter).
TEST(CompileParityEnv, NoCompileEnvVarDisablesCompilation) {
  Rng rng(9100);
  const ColoredGraph g = RandomGraph(1, 45, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;

  ::setenv("NWD_NO_COMPILE", "1", /*overwrite=*/1);
  const EnumerationEngine killed(g, q, options);
  ::unsetenv("NWD_NO_COMPILE");
  const EnumerationEngine compiled(g, q, options);

  EXPECT_FALSE(killed.stats().compiled);
  EXPECT_EQ(killed.compiled_query(), nullptr);
  EXPECT_NE(killed.stats().not_compiled_reason.find("NWD_NO_COMPILE"),
            std::string::npos)
      << killed.stats().not_compiled_reason;
  ExpectParity(compiled, killed, g, q, &rng);
}

}  // namespace

// --- Daemon epoch swaps -------------------------------------------------
// Two daemons serve the same query, one with compilation killed via the
// environment (read at engine build, i.e. at snapshot load/reload). Both
// answer streams must match before and after a live epoch swap.

namespace serve {
namespace {

struct DaemonAnswers {
  std::vector<Tuple> enumerated;
  std::vector<std::string> probe_heads;
};

class DaemonHarness {
 public:
  explicit DaemonHarness(const fo::Query& query)
      : daemon_(std::make_unique<Daemon>(query, DaemonOptions{})) {}

  void Load(const std::string& source) {
    std::string error;
    ASSERT_TRUE(daemon_->LoadInitialSnapshot(source, &error)) << error;
  }

  void Reload(const std::string& source, int expected_epoch) {
    Response response;
    ASSERT_TRUE(Call("reload " + source, &response));
    ASSERT_TRUE(response.ok) << response.head;
    EXPECT_EQ(expected_epoch, response.epoch);
  }

  // The metrics verb's JSON body (empty on failure).
  std::string Metrics() {
    Response response;
    EXPECT_TRUE(Call("metrics", &response));
    EXPECT_TRUE(response.ok) << response.head;
    return response.body;
  }

  // Full enumeration plus a deterministic sweep of test/next probes.
  DaemonAnswers Collect(int64_t num_vertices, int arity) {
    DaemonAnswers answers;
    Response response;
    EXPECT_TRUE(Call("enumerate", &response));
    EXPECT_TRUE(response.ok) << response.head;
    answers.enumerated = response.answers;
    Rng rng(31337);
    for (int trial = 0; trial < 40; ++trial) {
      Tuple t;
      for (int i = 0; i < arity; ++i) {
        t.push_back(static_cast<Vertex>(
            rng.NextBounded(static_cast<uint64_t>(num_vertices))));
      }
      for (const char* op : {"test ", "next "}) {
        EXPECT_TRUE(Call(op + FormatTuple(t), &response));
        EXPECT_TRUE(response.ok) << response.head;
        // Strip the per-request id: the two daemons mint different rids
        // but must agree on everything else in the head.
        std::string head = response.head;
        const size_t rid = head.rfind(" rid=");
        if (rid != std::string::npos) head.resize(rid);
        answers.probe_heads.push_back(std::move(head));
      }
    }
    return answers;
  }

 private:
  bool Call(const std::string& request, Response* response) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    daemon_->ServeFd(sv[1], sv[1]);
    Client client(sv[0], sv[0], /*seed=*/7);
    const bool ok = client.Call(request, response);
    ::close(sv[0]);
    return ok;
  }

  std::unique_ptr<Daemon> daemon_;
};

TEST(CompileParityDaemon, AnswersMatchAcrossEpochSwaps) {
  const fo::ParseResult parsed = fo::ParseFormula("dist(x, y) > 1 & C0(x)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  constexpr const char* kFirst = "gen:tree:150:7";
  constexpr const char* kSecond = "gen:bdeg:120:9";

  // Compiled daemon: load, collect, swap, collect.
  DaemonHarness compiled(parsed.query);
  compiled.Load(kFirst);
  const DaemonAnswers compiled_first = compiled.Collect(150, 2);
  compiled.Reload(kSecond, /*expected_epoch=*/2);
  const DaemonAnswers compiled_second = compiled.Collect(120, 2);

  // Interpreted daemon: same sequence with compilation killed while every
  // engine build (initial load and reload) happens.
  ::setenv("NWD_NO_COMPILE", "1", /*overwrite=*/1);
  DaemonHarness interp(parsed.query);
  interp.Load(kFirst);
  const DaemonAnswers interp_first = interp.Collect(150, 2);
  interp.Reload(kSecond, /*expected_epoch=*/2);
  const DaemonAnswers interp_second = interp.Collect(120, 2);
  ::unsetenv("NWD_NO_COMPILE");

  // The compilation plane is visible through the daemon's metrics verb
  // (values are process-global across tests, so assert the instruments
  // and that the program counter moved past the two builds above).
  const std::string metrics = compiled.Metrics();
  EXPECT_NE(metrics.find("compile.programs"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("compile.exec.op.find_skip"), std::string::npos);
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetCounter("compile.programs")->value(),
      2);

  EXPECT_FALSE(compiled_first.enumerated.empty());
  EXPECT_EQ(compiled_first.enumerated, interp_first.enumerated);
  EXPECT_EQ(compiled_first.probe_heads, interp_first.probe_heads);
  EXPECT_EQ(compiled_second.enumerated, interp_second.enumerated);
  EXPECT_EQ(compiled_second.probe_heads, interp_second.probe_heads);
}

}  // namespace
}  // namespace serve
}  // namespace nwd
