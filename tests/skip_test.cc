#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cover/kernel.h"
#include "cover/neighborhood_cover.h"
#include "gen/generators.h"
#include "skip/skip_pointers.h"
#include "util/rng.h"

namespace nwd {
namespace {

// Brute-force reference for SKIP(b, S).
Vertex BruteSkip(const std::vector<Vertex>& list,
                 const std::vector<std::vector<Vertex>>& kernels, Vertex b,
                 const std::vector<int64_t>& bags) {
  for (Vertex v : list) {
    if (v < b) continue;
    bool blocked = false;
    for (int64_t x : bags) {
      if (std::binary_search(kernels[x].begin(), kernels[x].end(), v)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return v;
  }
  return -1;
}

TEST(SkipPointers, HandComputedExample) {
  // n = 10; kernels: X0 = {1,2,3}, X1 = {4,5}; L = {1, 3, 5, 7}.
  const std::vector<std::vector<Vertex>> kernels = {{1, 2, 3}, {4, 5}};
  SkipPointers skip(10, kernels, {1, 3, 5, 7}, 2);
  EXPECT_EQ(skip.Skip(0, {}), 1);
  EXPECT_EQ(skip.Skip(0, {0}), 5);
  EXPECT_EQ(skip.Skip(0, {0, 1}), 7);
  EXPECT_EQ(skip.Skip(6, {0, 1}), 7);
  EXPECT_EQ(skip.Skip(8, {}), -1);
  EXPECT_EQ(skip.Skip(5, {1}), 7);
  EXPECT_EQ(skip.Skip(5, {0}), 5);
}

TEST(SkipPointers, EmptyList) {
  SkipPointers skip(5, {{0, 1}}, {}, 1);
  EXPECT_EQ(skip.Skip(0, {0}), -1);
  EXPECT_EQ(skip.Skip(0, {}), -1);
}

TEST(SkipPointers, InclusiveSemantics) {
  SkipPointers skip(5, {{2}}, {2, 3}, 1);
  EXPECT_EQ(skip.Skip(2, {}), 2);   // b itself qualifies
  EXPECT_EQ(skip.Skip(2, {0}), 3);  // b blocked by the kernel
}

struct SkipFuzzParams {
  int64_t n;
  int num_kernels;
  int max_set_size;
  uint64_t seed;
};

class SkipFuzzTest : public ::testing::TestWithParam<SkipFuzzParams> {};

TEST_P(SkipFuzzTest, MatchesBruteForce) {
  const SkipFuzzParams params = GetParam();
  Rng rng(params.seed);

  // Random kernels (sorted subsets) and a random target list.
  std::vector<std::vector<Vertex>> kernels(
      static_cast<size_t>(params.num_kernels));
  for (auto& kernel : kernels) {
    for (Vertex v = 0; v < params.n; ++v) {
      if (rng.NextBool(0.25)) kernel.push_back(v);
    }
  }
  std::vector<Vertex> list;
  for (Vertex v = 0; v < params.n; ++v) {
    if (rng.NextBool(0.4)) list.push_back(v);
  }

  SkipPointers skip(params.n, kernels, list, params.max_set_size);

  // All probes with sampled bag sets.
  for (int trial = 0; trial < 300; ++trial) {
    const Vertex b = static_cast<Vertex>(
        rng.NextBounded(static_cast<uint64_t>(params.n)));
    const int set_size = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(params.max_set_size) + 1));
    std::vector<int64_t> bags;
    while (static_cast<int>(bags.size()) < set_size) {
      const int64_t x = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(params.num_kernels)));
      if (std::find(bags.begin(), bags.end(), x) == bags.end()) {
        bags.push_back(x);
      }
    }
    std::sort(bags.begin(), bags.end());
    EXPECT_EQ(skip.Skip(b, bags), BruteSkip(list, kernels, b, bags))
        << "b=" << b << " |S|=" << bags.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkipFuzzTest,
    ::testing::Values(SkipFuzzParams{30, 3, 2, 1},
                      SkipFuzzParams{50, 5, 3, 2},
                      SkipFuzzParams{100, 8, 2, 3},
                      SkipFuzzParams{40, 4, 4, 4},
                      SkipFuzzParams{64, 6, 3, 5}));

// RepairKernels must be indistinguishable from construction over the new
// kernels: mutate kernel rows (rewrites, a cleared row, appended fresh
// bags), repair one structure in place, build another from scratch, and
// compare every probe plus the entry count (which pins the materialized
// SC families, not just the answers).
TEST(SkipPointers, RepairKernelsMatchesFreshBuild) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const int64_t n = 80;
    const int num_kernels = 6;
    const int max_set_size = 3;
    std::vector<std::vector<Vertex>> kernels(num_kernels);
    for (auto& kernel : kernels) {
      for (Vertex v = 0; v < n; ++v) {
        if (rng.NextBool(0.2)) kernel.push_back(v);
      }
    }
    std::vector<Vertex> list;
    for (Vertex v = 0; v < n; ++v) {
      if (rng.NextBool(0.4)) list.push_back(v);
    }

    SkipPointers repaired(n, kernels, list, max_set_size);

    std::vector<int64_t> damaged;
    for (int64_t x = 0; x < num_kernels; ++x) {
      if (!rng.NextBool(0.5)) continue;
      damaged.push_back(x);
      kernels[static_cast<size_t>(x)].clear();
      if (x == damaged.front() && rng.NextBool(0.5)) continue;  // row wiped
      for (Vertex v = 0; v < n; ++v) {
        if (rng.NextBool(0.2)) kernels[static_cast<size_t>(x)].push_back(v);
      }
    }
    kernels.emplace_back();  // an appended bag, as cover repair produces
    for (Vertex v = 0; v < n; ++v) {
      if (rng.NextBool(0.15)) kernels.back().push_back(v);
    }
    damaged.push_back(num_kernels);

    const auto new_index = std::make_shared<const FlatRows<int64_t>>(
        SkipPointers::IndexKernels(n, FlatRows<Vertex>(kernels)));
    const int64_t rows = repaired.RepairKernels(new_index, damaged);
    EXPECT_GT(rows, 0) << "seed=" << seed;
    SkipPointers fresh(n, new_index, list, max_set_size);

    EXPECT_EQ(repaired.TotalEntries(), fresh.TotalEntries())
        << "seed=" << seed;
    for (int trial = 0; trial < 400; ++trial) {
      const Vertex b =
          static_cast<Vertex>(rng.NextBounded(static_cast<uint64_t>(n)));
      const int set_size = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(max_set_size) + 1));
      std::vector<int64_t> bags;
      while (static_cast<int>(bags.size()) < set_size) {
        const int64_t x = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(kernels.size())));
        if (std::find(bags.begin(), bags.end(), x) == bags.end()) {
          bags.push_back(x);
        }
      }
      std::sort(bags.begin(), bags.end());
      EXPECT_EQ(repaired.Skip(b, bags), fresh.Skip(b, bags))
          << "seed=" << seed << " b=" << b;
      EXPECT_EQ(fresh.Skip(b, bags), BruteSkip(list, kernels, b, bags))
          << "seed=" << seed << " b=" << b;
    }

    // A no-damage repair is a no-op beyond adopting the index.
    EXPECT_EQ(repaired.RepairKernels(new_index, {}), 0);
    EXPECT_EQ(repaired.TotalEntries(), fresh.TotalEntries());
  }
}

// Integration with real covers/kernels: SKIP over a graph's kernels.
TEST(SkipPointers, WithRealCoverKernels) {
  Rng rng(9);
  const ColoredGraph g = gen::RandomTree(300, 0, {1, 0.3}, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 4);
  const auto kernels = ComputeAllKernels(g, cover, 2);
  // L = the C0-colored vertices.
  const std::vector<Vertex> list = g.ColorMembers(0);
  SkipPointers skip(g.NumVertices(), kernels, list, 2);
  EXPECT_GT(skip.TotalEntries(), 0);

  for (int trial = 0; trial < 100; ++trial) {
    const Vertex b = static_cast<Vertex>(rng.NextBounded(300));
    const Vertex a1 = static_cast<Vertex>(rng.NextBounded(300));
    const Vertex a2 = static_cast<Vertex>(rng.NextBounded(300));
    std::vector<int64_t> bags{cover.AssignedBag(a1), cover.AssignedBag(a2)};
    std::sort(bags.begin(), bags.end());
    bags.erase(std::unique(bags.begin(), bags.end()), bags.end());
    EXPECT_EQ(skip.Skip(b, bags), BruteSkip(list, kernels, b, bags));
  }
}

}  // namespace
}  // namespace nwd
