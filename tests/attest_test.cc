// Tests for the attestation plane: the JSON reader, interpolated
// quantiles, log-log fitting, claim gating, the baseline guard, and the
// round-trip contract between this library's JSON emitters and its own
// reader (everything the emitters write must parse back).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/attest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/trace.h"

namespace nwd {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// JSON reader.

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::Parse("null").value.IsNull());
  EXPECT_TRUE(json::Parse("true").value.bool_value);
  EXPECT_FALSE(json::Parse("false").value.bool_value);
  EXPECT_DOUBLE_EQ(json::Parse("-12.5e2").value.number, -1250.0);
  EXPECT_EQ(json::Parse("\"hi\"").value.string, "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  const auto result =
      json::Parse(R"({"a":[1,2,{"b":null}],"c":{"d":true},"e":""})");
  ASSERT_TRUE(result.ok) << result.error;
  const json::Value& doc = result.value;
  ASSERT_TRUE(doc.IsObject());
  const json::Value* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
  EXPECT_TRUE(a->array[2].Find("b")->IsNull());
  EXPECT_TRUE(doc.Find("c")->Find("d")->bool_value);
  EXPECT_EQ(doc.Find("e")->string, "");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, PreservesObjectInsertionOrder) {
  const auto result = json::Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.value.object.size(), 3u);
  EXPECT_EQ(result.value.object[0].first, "z");
  EXPECT_EQ(result.value.object[1].first, "a");
  EXPECT_EQ(result.value.object[2].first, "m");
}

TEST(JsonTest, DecodesEscapesAndUnicode) {
  const auto result = json::Parse(R"("a\"b\\c\n\t\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.value.string,
            "a\"b\\c\n\tA\xC3\xA9\xF0\x9F\x98\x80");  // é and 😀 as UTF-8
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "01", "1.", "1e",
        "+1", "nan", "infinity", "\"unterminated", "\"bad\\q\"",
        "\"\\ud800\"", "\"\\udc00x\"", "{\"a\":1} trailing", "[1 2]",
        "\x01"}) {
    const auto result = json::Parse(bad);
    EXPECT_FALSE(result.ok) << "accepted: " << bad;
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(JsonTest, RejectsDepthBomb) {
  const std::string bomb(200, '[');
  const auto result = json::Parse(bomb);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("nesting"), std::string::npos);
}

TEST(JsonTest, ReportsErrorOffset) {
  const auto result = json::Parse("{\"a\": bad}");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_offset, 6u);
  EXPECT_NE(result.error.find("at byte 6"), std::string::npos);
}

TEST(JsonTest, ParseFileMissingPathFailsCleanly) {
  const auto result = json::ParseFile("/nonexistent/nwd/file.json");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot read"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interpolated quantiles.

TEST(QuantileTest, EmptySnapshotIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h.Read(), 0.5), 0.0);
}

TEST(QuantileTest, SingleSampleEveryQuantile) {
  Histogram h;
  h.Record(100);
  const auto s = h.Read();
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 1.0), 100.0);
}

TEST(QuantileTest, ClampedToExactMinMax) {
  Histogram h;
  // Both land in bucket 7 ([64, 128)); interpolation alone would spread
  // across the bucket, but the exact moments clamp the estimate.
  h.Record(100);
  h.Record(101);
  const auto s = h.Read();
  for (double q : {0.01, 0.5, 0.99}) {
    const double est = SnapshotQuantile(s, q);
    EXPECT_GE(est, 100.0) << q;
    EXPECT_LE(est, 101.0) << q;
  }
}

TEST(QuantileTest, SeparatesWellSpreadDistribution) {
  Histogram h;
  // 99 small samples and one huge one: p50 must stay small, p999 large.
  for (int i = 0; i < 99; ++i) h.Record(300);
  h.Record(1 << 20);
  const auto s = h.Read();
  EXPECT_LT(SnapshotQuantile(s, 0.50), 520.0);   // inside bucket 9
  EXPECT_GT(SnapshotQuantile(s, 0.999), 1e5);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 1.0), static_cast<double>(1 << 20));
}

TEST(QuantileTest, MonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const auto s = h.Read();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double est = SnapshotQuantile(s, q);
    EXPECT_GE(est, prev) << "q=" << q;
    prev = est;
  }
}

TEST(QuantileTest, ZeroBucketHandled) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(0);
  h.Record(50);
  const auto s = h.Read();
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(s, 1.0), 50.0);
}

// ---------------------------------------------------------------------------
// Histogram negative-sample policy.

TEST(HistogramTest, NegativeSamplesDroppedAndCounted) {
  Histogram h;
  h.Record(-5);
  h.Record(-1);
  auto s = h.Read();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.negative_samples, 2);
  for (int64_t b : s.buckets) EXPECT_EQ(b, 0);

  h.Record(10);
  s = h.Read();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.min, 10);  // not dragged to 0 by the clamped negatives
  EXPECT_EQ(s.max, 10);
  EXPECT_EQ(s.negative_samples, 2);
}

TEST(HistogramTest, NegativeSamplesSurfaceInRegistryJson) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t.hist");
  h->Record(-3);
  h->Record(7);
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_NE(out.str().find("\"negative_samples\":1"), std::string::npos)
      << out.str();
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_DOUBLE_EQ(parsed.value.Find("histograms")
                       ->Find("t.hist")
                       ->Find("negative_samples")
                       ->number,
                   1.0);
}

// ---------------------------------------------------------------------------
// Log-log fitting.

TEST(FitTest, RecoversExactPowerLaw) {
  // y = 3 * x^2
  const LogLogFit fit = FitLogLog({{10, 300}, {20, 1200}, {40, 4800}});
  EXPECT_EQ(fit.points, 3);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, std::log(3.0), 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitTest, FlatDataHasZeroSlopePerfectFit) {
  const LogLogFit fit = FitLogLog({{100, 7}, {200, 7}, {400, 7}});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(FitTest, SkipsNonPositivePoints) {
  const LogLogFit fit = FitLogLog({{-1, 5}, {0, 5}, {10, 0}, {10, 100},
                                   {100, 1000}});
  EXPECT_EQ(fit.points, 2);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

TEST(FitTest, TooFewPointsYieldsNoFit) {
  const LogLogFit fit = FitLogLog({{10, 100}});
  EXPECT_EQ(fit.points, 1);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(FitTest, IdenticalXIsDegenerate) {
  const LogLogFit fit = FitLogLog({{10, 100}, {10, 200}});
  EXPECT_EQ(fit.points, 0);
}

// ---------------------------------------------------------------------------
// Attestation.

BenchRun SweepRun(const std::string& graph_class, int64_t n, double prep_ms,
                  double p50, double p99, double space) {
  BenchRun run;
  run.name = "BM_Synthetic/" + graph_class + "/" + std::to_string(n);
  run.graph_class = graph_class;
  run.n = n;
  run.iterations = 1;
  run.real_ms = prep_ms * 3;
  run.cpu_ms = prep_ms * 3;
  run.counters = {{"n", static_cast<double>(n)},
                  {"solutions", static_cast<double>(n) * 10},
                  {"prep_ms", prep_ms},
                  {"delay_p50_ns", p50},
                  {"delay_p99_ns", p99},
                  {"space_entries", space},
                  {"max_delay_ns", p99 * 50}};
  return run;
}

BenchArtifact FlatArtifact() {
  BenchArtifact artifact;
  artifact.benchmark = "synthetic";
  artifact.runs = {SweepRun("tree", 1024, 10.0, 300, 800, 15000),
                   SweepRun("tree", 2048, 20.5, 305, 790, 29000),
                   SweepRun("tree", 4096, 43.0, 298, 820, 62000)};
  return artifact;
}

BenchArtifact SuperlinearArtifact() {
  BenchArtifact artifact;
  artifact.benchmark = "synthetic";
  artifact.runs = {SweepRun("tree", 1024, 10.0, 300, 800, 15000),
                   SweepRun("tree", 2048, 40.0, 600, 1600, 60000),
                   SweepRun("tree", 4096, 160.0, 1200, 3200, 240000)};
  return artifact;
}

TEST(AttestTest, FlatSweepPassesAllGatedClaims) {
  const AttestReport report =
      Attest({FlatArtifact()}, {"synthetic"}, AttestConfig{});
  EXPECT_TRUE(report.pass);
  int gated_pass = 0;
  for (const ClaimResult& claim : report.claims) {
    EXPECT_NE(claim.status, ClaimResult::Status::kFail) << claim.claim;
    if (claim.status == ClaimResult::Status::kPass) ++gated_pass;
    if (claim.claim == "cor2.5.max_delay") {
      EXPECT_EQ(claim.status, ClaimResult::Status::kInfo);
      EXPECT_FALSE(claim.gated);
    }
  }
  EXPECT_EQ(gated_pass, 4);  // prep, p50, p99, space
}

TEST(AttestTest, SuperlinearSweepFails) {
  const AttestReport report =
      Attest({SuperlinearArtifact()}, {"synthetic"}, AttestConfig{});
  EXPECT_FALSE(report.pass);
  int failed = 0;
  for (const ClaimResult& claim : report.claims) {
    if (claim.status == ClaimResult::Status::kFail) ++failed;
  }
  EXPECT_EQ(failed, 4);  // delay slope 1 and prep/space slope 2 all exceed
}

TEST(AttestTest, BoundsComeFromConfig) {
  AttestConfig loose;
  loose.flat_slope = 1.2;
  loose.epsilon = 1.5;
  EXPECT_TRUE(Attest({SuperlinearArtifact()}, {"s"}, loose).pass);

  AttestConfig tight;
  tight.flat_slope = 0.01;  // even the flat sweep's noise exceeds this
  EXPECT_FALSE(Attest({FlatArtifact()}, {"s"}, tight).pass);
}

TEST(AttestTest, FallsBackToMeanDelayForOldArtifacts) {
  BenchArtifact artifact = FlatArtifact();
  for (BenchRun& run : artifact.runs) {
    std::vector<std::pair<std::string, double>> kept;
    for (auto& [name, value] : run.counters) {
      if (name == "delay_p50_ns") {
        kept.emplace_back("mean_delay_ns", value);
      } else if (name != "delay_p99_ns") {
        kept.emplace_back(name, value);
      }
    }
    run.counters = std::move(kept);
  }
  const AttestReport report = Attest({artifact}, {"s"}, AttestConfig{});
  EXPECT_TRUE(report.pass);
  bool found_fallback = false;
  bool p99_skipped = false;
  for (const ClaimResult& claim : report.claims) {
    if (claim.claim == "cor2.5.delay_p50") {
      EXPECT_EQ(claim.metric, "mean_delay_ns");
      EXPECT_EQ(claim.status, ClaimResult::Status::kPass);
      found_fallback = true;
    }
    if (claim.claim == "cor2.5.delay_p99") {
      EXPECT_EQ(claim.status, ClaimResult::Status::kSkipped);
      p99_skipped = true;
    }
  }
  EXPECT_TRUE(found_fallback);
  EXPECT_TRUE(p99_skipped);
}

TEST(AttestTest, ShortSweepSkipsAndStrictFails) {
  BenchArtifact artifact = FlatArtifact();
  artifact.runs.resize(2);
  AttestConfig config;
  const AttestReport report = Attest({artifact}, {"s"}, config);
  EXPECT_TRUE(report.pass);
  for (const ClaimResult& claim : report.claims) {
    EXPECT_EQ(claim.status, ClaimResult::Status::kSkipped) << claim.claim;
  }
  AttestConfig strict = config;
  strict.strict = true;
  EXPECT_FALSE(Attest({artifact}, {"s"}, strict).pass);
}

TEST(AttestTest, NoSweepDataPassesTrivially) {
  BenchArtifact artifact;
  artifact.benchmark = "throughput";
  BenchRun run;
  run.name = "BM_Throughput/8";
  run.graph_class = "tree";
  run.n = -1;  // not an n-sweep
  artifact.runs.push_back(run);
  const AttestReport report = Attest({artifact}, {"t"}, AttestConfig{});
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.claims.empty());
}

TEST(AttestTest, GateMaxTurnsMaxDelayIntoGatedClaim) {
  // The flat artifact's max_delay (p99 * 50) is still flat: passes.
  AttestConfig config;
  config.gate_max = true;
  const AttestReport flat = Attest({FlatArtifact()}, {"s"}, config);
  for (const ClaimResult& claim : flat.claims) {
    if (claim.claim == "cor2.5.max_delay") {
      EXPECT_TRUE(claim.gated);
      EXPECT_EQ(claim.status, ClaimResult::Status::kPass);
    }
  }
  // The superlinear one grows with n: now it fails too.
  const AttestReport super = Attest({SuperlinearArtifact()}, {"s"}, config);
  for (const ClaimResult& claim : super.claims) {
    if (claim.claim == "cor2.5.max_delay") {
      EXPECT_EQ(claim.status, ClaimResult::Status::kFail);
    }
  }
}

TEST(AttestTest, DuplicateSweepPointsAreAveraged) {
  BenchArtifact artifact = FlatArtifact();
  // A second 1024 run with double the prep time: the fit should see the
  // mean, not two conflicting points.
  artifact.runs.push_back(SweepRun("tree", 1024, 30.0, 300, 800, 15000));
  const AttestReport report = Attest({artifact}, {"s"}, AttestConfig{});
  for (const ClaimResult& claim : report.claims) {
    if (claim.claim == "thm2.3.preprocessing") {
      ASSERT_EQ(claim.points.size(), 3u);
      EXPECT_DOUBLE_EQ(claim.points[0].second, 20.0);  // mean(10, 30)
    }
  }
}

TEST(AttestTest, ReportJsonParsesBackAndCarriesVerdict) {
  const AttestReport report =
      Attest({SuperlinearArtifact()}, {"synthetic"}, AttestConfig{});
  std::ostringstream out;
  WriteAttestJson(out, report);
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.Find("schema")->string, "nwd-attest-json/1");
  EXPECT_EQ(parsed.value.Find("mode")->string, "attest");
  EXPECT_FALSE(parsed.value.Find("pass")->bool_value);
  const json::Value* claims = parsed.value.Find("claims");
  ASSERT_NE(claims, nullptr);
  EXPECT_EQ(claims->array.size(), report.claims.size());
  const json::Value& first = claims->array[0];
  EXPECT_EQ(first.Find("claim")->string, "thm2.3.preprocessing");
  EXPECT_NEAR(first.Find("slope")->number, 2.0, 0.01);
  EXPECT_EQ(first.Find("points")->array.size(), 3u);
}

// ---------------------------------------------------------------------------
// Baseline guard.

TEST(BaselineTest, IdenticalArtifactsPass) {
  const BenchArtifact artifact = FlatArtifact();
  const BaselineReport report =
      CompareBaseline(artifact, artifact, BaselineConfig{});
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.divergences, 0);
  EXPECT_TRUE(report.only_in_baseline.empty());
  EXPECT_TRUE(report.only_in_current.empty());
}

TEST(BaselineTest, SlowdownBeyondToleranceRegresses) {
  BenchArtifact current = FlatArtifact();
  for (BenchRun& run : current.runs) {
    run.cpu_ms *= 2.0;  // past the default 1.5x gate
  }
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, BaselineConfig{});
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.regressions, 3);

  BaselineConfig loose;
  loose.rel_tol = 2.0;
  EXPECT_TRUE(CompareBaseline(FlatArtifact(), current, loose).pass);
}

TEST(BaselineTest, SpeedupIsImprovementNotFailure) {
  BenchArtifact current = FlatArtifact();
  for (BenchRun& run : current.runs) run.cpu_ms *= 0.3;
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, BaselineConfig{});
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.improvements, 3);
}

TEST(BaselineTest, SolutionCountMismatchDivergesEvenWithLooseTolerance) {
  BenchArtifact current = FlatArtifact();
  for (auto& [name, value] : current.runs[1].counters) {
    if (name == "solutions") value += 1;
  }
  BaselineConfig loose;
  loose.rel_tol = 1000.0;
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, loose);
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.divergences, 1);
}

TEST(BaselineTest, MaxDelayIsReportOnlyUnlessGated) {
  BenchArtifact current = FlatArtifact();
  for (auto& [name, value] : current.runs[0].counters) {
    if (name == "max_delay_ns") value *= 100;  // one big outlier
  }
  EXPECT_TRUE(
      CompareBaseline(FlatArtifact(), current, BaselineConfig{}).pass);
  BaselineConfig gated;
  gated.gate_max = true;
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, gated);
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.regressions, 1);
}

TEST(BaselineTest, UnmatchedRunsListedAndGatedByRequireAll) {
  BenchArtifact current = FlatArtifact();
  current.runs[2].name = "BM_Renamed/4096";
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, BaselineConfig{});
  EXPECT_TRUE(report.pass);  // intersection compared, remainder listed
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "BM_Renamed/4096");

  BaselineConfig strict;
  strict.require_all = true;
  EXPECT_FALSE(CompareBaseline(FlatArtifact(), current, strict).pass);
}

TEST(BaselineTest, ReportJsonParsesBack) {
  BenchArtifact current = FlatArtifact();
  for (BenchRun& run : current.runs) run.cpu_ms *= 3.0;
  const BaselineReport report =
      CompareBaseline(FlatArtifact(), current, BaselineConfig{});
  std::ostringstream out;
  WriteBaselineJson(out, report);
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.Find("mode")->string, "baseline");
  EXPECT_FALSE(parsed.value.Find("pass")->bool_value);
  EXPECT_DOUBLE_EQ(parsed.value.Find("regressions")->number, 3.0);
  const json::Value* comparisons = parsed.value.Find("comparisons");
  ASSERT_NE(comparisons, nullptr);
  EXPECT_FALSE(comparisons->array.empty());
}

// ---------------------------------------------------------------------------
// Artifact parsing and emitter round-trips.

TEST(ArtifactTest, ParsesBenchArtifact) {
  const char* doc = R"({"schema":"nwd-bench-json/1","benchmark":"b",
    "runs":[{"name":"BM_X/1024","graph_class":"tree","n":1024,
             "iterations":2,"real_ms":1.5,"cpu_ms":1.25,
             "counters":{"solutions":42,"prep_ms":0.5}}]})";
  const BenchParseResult result = ParseBenchArtifact(doc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.artifact.benchmark, "b");
  ASSERT_EQ(result.artifact.runs.size(), 1u);
  const BenchRun& run = result.artifact.runs[0];
  EXPECT_EQ(run.name, "BM_X/1024");
  EXPECT_EQ(run.n, 1024);
  EXPECT_EQ(run.iterations, 2);
  EXPECT_DOUBLE_EQ(run.cpu_ms, 1.25);
  ASSERT_NE(run.FindCounter("solutions"), nullptr);
  EXPECT_DOUBLE_EQ(*run.FindCounter("solutions"), 42.0);
  EXPECT_EQ(run.FindCounter("nope"), nullptr);
}

TEST(ArtifactTest, RejectsBadArtifacts) {
  EXPECT_FALSE(ParseBenchArtifact("[]").ok);
  EXPECT_FALSE(ParseBenchArtifact(R"({"schema":"wrong/1","runs":[]})").ok);
  EXPECT_FALSE(
      ParseBenchArtifact(R"({"schema":"nwd-bench-json/1","benchmark":"b"})")
          .ok);
  // A run missing required numeric keys.
  EXPECT_FALSE(ParseBenchArtifact(
                   R"({"schema":"nwd-bench-json/1","benchmark":"b",
                       "runs":[{"name":"x","graph_class":"t"}]})")
                   .ok);
  // Non-numeric counter value.
  EXPECT_FALSE(ParseBenchArtifact(
                   R"({"schema":"nwd-bench-json/1","benchmark":"b",
                       "runs":[{"name":"x","graph_class":"t","n":1,
                                "iterations":1,"real_ms":1,"cpu_ms":1,
                                "counters":{"k":"v"}}]})")
                   .ok);
}

TEST(ArtifactTest, WriteParseRoundTrip) {
  BenchArtifact artifact = FlatArtifact();
  artifact.runs[0].name = "weird \"name\"\twith\nescapes";
  std::ostringstream out;
  WriteBenchArtifactJson(out, artifact);
  const BenchParseResult result = ParseBenchArtifact(out.str());
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.artifact.runs.size(), artifact.runs.size());
  EXPECT_EQ(result.artifact.runs[0].name, artifact.runs[0].name);
  for (size_t i = 0; i < artifact.runs.size(); ++i) {
    EXPECT_EQ(result.artifact.runs[i].counters, artifact.runs[i].counters);
    EXPECT_DOUBLE_EQ(result.artifact.runs[i].cpu_ms, artifact.runs[i].cpu_ms);
  }
}

TEST(RoundTripTest, EmptyMetricsRegistryJsonParses) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.WriteJson(out);
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.Find("schema")->string, "nwd-metrics/1");
  EXPECT_TRUE(parsed.value.Find("counters")->object.empty());
  EXPECT_TRUE(parsed.value.Find("histograms")->object.empty());
}

TEST(RoundTripTest, PopulatedMetricsRegistryJsonParses) {
  MetricsRegistry registry;
  registry.GetCounter("c.events")->Add(17);
  registry.GetGauge("g.depth")->Set(-4);  // negative gauges are legal
  Histogram* h = registry.GetHistogram("h.delay");
  for (int i = 0; i < 100; ++i) h->Record(i * 37);
  std::ostringstream out;
  registry.WriteJson(out);
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_DOUBLE_EQ(
      parsed.value.Find("counters")->Find("c.events")->number, 17.0);
  EXPECT_DOUBLE_EQ(parsed.value.Find("gauges")->Find("g.depth")->number, -4.0);
  const json::Value* hist = parsed.value.Find("histograms")->Find("h.delay");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 100.0);
  // Elided trailing zero buckets must still sum to the count.
  double bucket_sum = 0;
  for (const json::Value& b : hist->Find("buckets")->array) {
    bucket_sum += b.number;
  }
  EXPECT_DOUBLE_EQ(bucket_sum, 100.0);
}

TEST(RoundTripTest, TracerJsonParsesIncludingDroppedEvents) {
  Tracer tracer;
  const int64_t base = Tracer::NowNs();
  // Overfill the bounded buffer so dropped_events lands in otherData.
  for (size_t i = 0; i < Tracer::kMaxEvents + 10; ++i) {
    tracer.RecordSpan("span/fill", base, base + 100);
  }
  EXPECT_EQ(tracer.dropped_events(), 10);
  std::ostringstream out;
  tracer.WriteJson(out);
  const auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const json::Value* events = parsed.value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), Tracer::kMaxEvents);
  EXPECT_EQ(events->array[0].Find("ph")->string, "X");
  const json::Value* other = parsed.value.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->Find("dropped_events")->number, 10.0);
}

}  // namespace
}  // namespace obs
}  // namespace nwd
