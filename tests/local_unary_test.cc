#include <gtest/gtest.h>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "enumerate/local_unary.h"
#include "fo/analysis.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

// Parses a formula with exactly one free variable and returns its
// guarded-locality radius.
int64_t RadiusOf(const char* text) {
  const fo::ParseResult r = fo::ParseFormula(text);
  EXPECT_TRUE(r.ok) << text << ": " << r.error;
  EXPECT_EQ(r.query.free_vars.size(), 1u) << text;
  return GuardedLocalityRadius(r.query.formula, r.query.free_vars[0]);
}

TEST(GuardedLocality, RadiiOfTypicalPatterns) {
  // exists z (E(y,z) & Red(z)): guard E anchors z at 1.
  EXPECT_EQ(RadiusOf("exists z. E(y, z) & C0(z)"), 1);
  // Nested: z anchored at 1, w at 1+2 = 3; the dist guard atom's own reach
  // is counted conservatively (anchor + bound), giving 5 (tight would be
  // 3 — looseness only costs preprocessing, never correctness).
  EXPECT_EQ(
      RadiusOf("exists z. E(y, z) & (exists w. dist(z, w) <= 2 & C1(w))"),
      5);
  // Distance guard, conservative: anchor 4 + atom bound 4.
  EXPECT_EQ(RadiusOf("exists z. dist(y, z) <= 4 & C0(z)"), 8);
  // Negation around the pattern keeps locality.
  EXPECT_EQ(RadiusOf("!(exists z. E(y, z) & C0(z))"), 1);
  // Color-only formulas are 0-local.
  EXPECT_EQ(RadiusOf("C0(y) & !C1(y)"), 0);
}

TEST(GuardedLocality, RejectsUnguardedQuantifiers) {
  // No guard at all: "some red vertex anywhere".
  EXPECT_EQ(RadiusOf("C0(y) & (exists z. C0(z))"), -1);
  // Guard hidden under a disjunction does not bound the witness.
  EXPECT_EQ(RadiusOf("exists z. E(y, z) | C0(z)"), -1);
  // forall is outside the guarded fragment (write !exists instead).
  EXPECT_EQ(RadiusOf("forall z. E(y, z) | C0(z)"), -1);
}

TEST(ExtractLocalUnaries, RewritesToVirtualColors) {
  const fo::ParseResult r = fo::ParseFormula(
      "!(dist(x, y) <= 2) & (exists z. E(y, z) & C0(z))");
  ASSERT_TRUE(r.ok);
  const LocalUnaryExtraction extraction = ExtractLocalUnaries(r.query, 2);
  EXPECT_TRUE(extraction.complete);
  ASSERT_EQ(extraction.unaries.size(), 1u);
  EXPECT_EQ(extraction.unaries[0].virtual_color, 2);
  EXPECT_EQ(extraction.unaries[0].radius, 1);
  EXPECT_TRUE(fo::IsQuantifierFree(extraction.rewritten.formula));
}

TEST(ExtractLocalUnaries, DeduplicatesAcrossVariables) {
  // The same pattern on x and on y must share one virtual color.
  const fo::ParseResult r = fo::ParseFormula(
      "(exists z. E(x, z) & C0(z)) & (exists z. E(y, z) & C0(z))");
  ASSERT_TRUE(r.ok);
  const LocalUnaryExtraction extraction = ExtractLocalUnaries(r.query, 1);
  EXPECT_TRUE(extraction.complete);
  EXPECT_EQ(extraction.unaries.size(), 1u);
}

TEST(ExtractLocalUnaries, IncompleteWhenBinaryQuantifierRemains) {
  const fo::ParseResult r =
      fo::ParseFormula("exists z. E(x, z) & E(z, y)");
  ASSERT_TRUE(r.ok);
  const LocalUnaryExtraction extraction = ExtractLocalUnaries(r.query, 0);
  EXPECT_FALSE(extraction.complete);
}

TEST(Materialize, VirtualColorsMatchDirectEvaluation) {
  Rng rng(3);
  const ColoredGraph g = gen::BoundedDegreeGraph(80, 4, 2.5, {2, 0.3}, &rng);
  const fo::ParseResult r =
      fo::ParseFormula("exists z. E(y, z) & C0(z)");
  ASSERT_TRUE(r.ok);
  LocalUnary unary;
  unary.formula = r.query.formula;
  unary.var = r.query.free_vars[0];
  unary.radius = 1;
  unary.virtual_color = g.NumColors();
  const ColoredGraph expanded = MaterializeLocalUnaries(g, {unary});
  ASSERT_EQ(expanded.NumColors(), g.NumColors() + 1);
  fo::NaiveEvaluator naive(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(expanded.HasColor(v, unary.virtual_color),
              naive.TestTuple(r.query, {v}))
        << "v=" << v;
  }
}

// End-to-end: the engine handles guarded-quantified queries without
// falling back, and matches the naive semantics.
struct PatternParams {
  const char* text;
  uint64_t seed;
};

class PatternEngineTest : public ::testing::TestWithParam<PatternParams> {};

TEST_P(PatternEngineTest, EngineMatchesNaive) {
  const PatternParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g =
      gen::BoundedDegreeGraph(60, 4, 2.2, {2, 0.35}, &rng);
  const fo::ParseResult r = fo::ParseFormula(params.text);
  ASSERT_TRUE(r.ok) << r.error;

  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const EnumerationEngine engine(g, r.query, options);
  EXPECT_FALSE(engine.used_fallback())
      << params.text << ": " << engine.stats().fallback_reason;
  EXPECT_GT(engine.stats().local_unaries, 0) << params.text;

  fo::NaiveEvaluator naive(g);
  const std::vector<Tuple> expected = naive.AllSolutions(r.query);
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> produced;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    produced.push_back(*t);
  }
  EXPECT_EQ(produced, expected) << params.text;

  for (int trial = 0; trial < 40; ++trial) {
    Tuple t;
    for (int i = 0; i < r.query.arity(); ++i) {
      t.push_back(static_cast<Vertex>(
          rng.NextBounded(static_cast<uint64_t>(g.NumVertices()))));
    }
    EXPECT_EQ(engine.Test(t), naive.TestTuple(r.query, t)) << params.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PatternEngineTest,
    ::testing::Values(
        PatternParams{"!(dist(x,y) <= 2) & (exists z. E(y,z) & C0(z))", 1},
        PatternParams{"(exists z. E(x,z) & C1(z)) & dist(x,y) <= 2", 2},
        PatternParams{
            "(exists z. E(x,z) & C0(z)) & (exists z. E(y,z) & C0(z)) "
            "& !(x = y)",
            3},
        PatternParams{
            "!(exists z. dist(x,z) <= 2 & C1(z)) & E(x, y)", 4},
        PatternParams{
            "(exists z. E(y,z) & (exists w. E(z,w) & C0(w))) "
            "& !(dist(x,y) <= 1)",
            5}));

}  // namespace
}  // namespace nwd
