#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/builder.h"
#include "graph/colored_graph.h"
#include "graph/stats.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace nwd {
namespace {

ColoredGraph PathGraph(int64_t n, int num_colors = 0) {
  GraphBuilder builder(n, num_colors);
  for (Vertex v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return std::move(builder).Build();
}

TEST(Builder, DeduplicatesEdgesAndDropsSelfLoops) {
  GraphBuilder builder(3, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 2);
  const ColoredGraph g = std::move(builder).Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(Graph, HasEdgeProbesLowerDegreeEndpointSymmetrically) {
  // A star with one long tail: the hub has high degree, the tail vertices
  // degree <= 2. HasEdge must answer identically in both argument orders
  // (it probes the lower-degree endpoint's adjacency either way), across
  // both the tiny-list linear scan and the binary-search path.
  const int64_t spokes = 40;
  GraphBuilder builder(spokes + 3, 0);
  for (Vertex v = 1; v <= spokes; ++v) builder.AddEdge(0, v);
  builder.AddEdge(1, spokes + 1);
  builder.AddEdge(spokes + 1, spokes + 2);
  const ColoredGraph g = std::move(builder).Build();
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex u = 0; u < g.NumVertices(); ++u) {
      EXPECT_EQ(g.HasEdge(v, u), g.HasEdge(u, v)) << v << "," << u;
    }
  }
  EXPECT_TRUE(g.HasEdge(spokes, 0));   // hub edge, asked from the leaf
  EXPECT_TRUE(g.HasEdge(0, spokes));   // hub edge, asked from the hub
  EXPECT_FALSE(g.HasEdge(2, spokes + 2));
  EXPECT_FALSE(g.HasEdge(spokes + 2, 2));

  // Randomized cross-check on a denser graph (both endpoints above the
  // linear-scan cutoff).
  Rng rng(17);
  const ColoredGraph dense = gen::ErdosRenyi(80, 12.0, {0, 0.0}, &rng);
  for (Vertex v = 0; v < dense.NumVertices(); ++v) {
    for (const Vertex u : dense.Neighbors(v)) {
      EXPECT_TRUE(dense.HasEdge(v, u));
      EXPECT_TRUE(dense.HasEdge(u, v));
    }
  }
}

TEST(Builder, NeighborsSortedAndSymmetric) {
  GraphBuilder builder(5, 0);
  builder.AddEdge(3, 1);
  builder.AddEdge(3, 0);
  builder.AddEdge(3, 4);
  const ColoredGraph g = std::move(builder).Build();
  const auto nbrs = g.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.Degree(3), 3);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(*g.Neighbors(0).begin(), 3);
}

TEST(Builder, ColorsAndMembers) {
  GraphBuilder builder(4, 2);
  builder.SetColor(1, 0);
  builder.SetColor(3, 0);
  builder.SetColor(3, 1);
  builder.SetColor(3, 1);  // duplicate
  const ColoredGraph g = std::move(builder).Build();
  EXPECT_TRUE(g.HasColor(1, 0));
  EXPECT_FALSE(g.HasColor(1, 1));
  EXPECT_TRUE(g.HasColor(3, 1));
  EXPECT_EQ(g.ColorMembers(0), (std::vector<Vertex>{1, 3}));
  EXPECT_EQ(g.ColorMembers(1), (std::vector<Vertex>{3}));
}

TEST(Builder, FromGraphPreservesAndWidens) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1);
  builder.SetColor(2, 0);
  const ColoredGraph g = std::move(builder).Build();
  GraphBuilder widened = GraphBuilder::FromGraph(g, 2);
  widened.SetColor(0, 2);
  const ColoredGraph h = std::move(widened).Build();
  EXPECT_EQ(h.NumColors(), 3);
  EXPECT_TRUE(h.HasEdge(0, 1));
  EXPECT_TRUE(h.HasColor(2, 0));
  EXPECT_TRUE(h.HasColor(0, 2));
}

TEST(Graph, SizeNorm) {
  const ColoredGraph g = PathGraph(5);
  EXPECT_EQ(g.NumVertices(), 5);
  EXPECT_EQ(g.NumEdges(), 4);
  EXPECT_EQ(g.SizeNorm(), 9);
}

TEST(Bfs, NeighborhoodOnPath) {
  const ColoredGraph g = PathGraph(10);
  BfsScratch scratch(g.NumVertices());
  EXPECT_EQ(scratch.Neighborhood(g, 5, 2),
            (std::vector<Vertex>{3, 4, 5, 6, 7}));
  EXPECT_EQ(scratch.DistanceTo(3), 2);
  EXPECT_EQ(scratch.DistanceTo(5), 0);
  EXPECT_EQ(scratch.DistanceTo(8), -1);
  EXPECT_EQ(scratch.Neighborhood(g, 0, 1), (std::vector<Vertex>{0, 1}));
}

TEST(Bfs, MultiSource) {
  const ColoredGraph g = PathGraph(10);
  BfsScratch scratch(g.NumVertices());
  const auto ball = scratch.Neighborhood(g, std::vector<Vertex>{0, 9}, 1);
  EXPECT_EQ(ball, (std::vector<Vertex>{0, 1, 8, 9}));
}

TEST(Bfs, BoundedDistance) {
  const ColoredGraph g = PathGraph(8);
  EXPECT_EQ(BoundedDistance(g, 0, 5, 10), 5);
  EXPECT_EQ(BoundedDistance(g, 0, 5, 4), -1);
  EXPECT_EQ(BoundedDistance(g, 3, 3, 0), 0);
}

TEST(Bfs, ScratchReuseIsClean) {
  const ColoredGraph g = PathGraph(6);
  BfsScratch scratch(g.NumVertices());
  scratch.Neighborhood(g, 0, 5);
  EXPECT_EQ(scratch.DistanceTo(5), 5);
  scratch.Neighborhood(g, 5, 1);
  EXPECT_EQ(scratch.DistanceTo(0), -1);  // stale state must not leak
  EXPECT_EQ(scratch.DistanceTo(4), 1);
}

TEST(Bfs, ConnectedComponents) {
  GraphBuilder builder(6, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(4, 5);
  const ColoredGraph g = std::move(builder).Build();
  const auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(Subgraph, InduceKeepsOrderAndEdges) {
  const ColoredGraph g = PathGraph(6);
  const SubgraphView view = InduceSubgraph(g, {1, 2, 4});
  EXPECT_EQ(view.graph.NumVertices(), 3);
  EXPECT_EQ(view.graph.NumEdges(), 1);  // only {1,2} survives
  EXPECT_TRUE(view.graph.HasEdge(0, 1));
  EXPECT_EQ(view.ToGlobal(0), 1);
  EXPECT_EQ(view.ToGlobal(2), 4);
  EXPECT_EQ(view.ToLocal(4), 2);
  EXPECT_EQ(view.ToLocal(3), -1);
}

TEST(Subgraph, InduceKeepsColors) {
  GraphBuilder builder(4, 1);
  builder.AddEdge(0, 1);
  builder.SetColor(1, 0);
  const ColoredGraph g = std::move(builder).Build();
  const SubgraphView view = InduceSubgraph(g, {1, 3});
  EXPECT_TRUE(view.graph.HasColor(0, 0));
  EXPECT_FALSE(view.graph.HasColor(1, 0));
}

TEST(Subgraph, ExcludingVertex) {
  const ColoredGraph g = PathGraph(5);
  const SubgraphView view = InduceSubgraphExcluding(g, {0, 1, 2, 3, 4}, 2);
  EXPECT_EQ(view.graph.NumVertices(), 4);
  EXPECT_EQ(view.graph.NumEdges(), 2);  // {0,1} and {3,4}
  EXPECT_EQ(view.ToLocal(2), -1);
}

TEST(Stats, DegeneracyOfForestIsOne) {
  Rng rng(1);
  const ColoredGraph g = gen::RandomTree(200, 0, {0, 0.0}, &rng);
  const DegeneracyResult result = DegeneracyOrder(g);
  EXPECT_EQ(result.degeneracy, 1);
  EXPECT_EQ(result.order.size(), 200u);
}

TEST(Stats, DegeneracyOfCliqueIsNMinusOne) {
  Rng rng(1);
  const ColoredGraph g = gen::Clique(6, {0, 0.0}, &rng);
  EXPECT_EQ(DegeneracyOrder(g).degeneracy, 5);
}

TEST(Stats, DegeneracyOrderIsPermutation) {
  Rng rng(9);
  const ColoredGraph g = gen::ErdosRenyi(100, 4.0, {0, 0.0}, &rng);
  const DegeneracyResult result = DegeneracyOrder(g);
  std::vector<Vertex> sorted = result.order;
  std::sort(sorted.begin(), sorted.end());
  for (Vertex v = 0; v < 100; ++v) {
    EXPECT_EQ(sorted[v], v);
    EXPECT_EQ(result.order[result.position[v]], v);
  }
}

TEST(Stats, Degrees) {
  const ColoredGraph g = PathGraph(4);
  EXPECT_DOUBLE_EQ(AverageDegree(g), 1.5);
  EXPECT_EQ(MaxDegree(g), 2);
  EXPECT_DOUBLE_EQ(AverageDegree(ColoredGraph()), 0.0);
}

// Property: BFS neighborhood equals brute-force distance filter.
class BfsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsPropertyTest, NeighborhoodMatchesBruteForce) {
  Rng rng(GetParam());
  const ColoredGraph g = gen::ErdosRenyi(60, 3.0, {0, 0.0}, &rng);
  BfsScratch scratch(g.NumVertices());
  for (int trial = 0; trial < 10; ++trial) {
    const Vertex source = static_cast<Vertex>(rng.NextBounded(60));
    const int radius = 1 + static_cast<int>(rng.NextBounded(4));
    const auto ball = scratch.Neighborhood(g, source, radius);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      const int64_t dist = BoundedDistance(g, source, v, radius);
      const bool in_ball = std::binary_search(ball.begin(), ball.end(), v);
      EXPECT_EQ(in_ball, dist >= 0 && dist <= radius)
          << "source=" << source << " v=" << v << " radius=" << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace nwd
