// Cross-module, randomized end-to-end fuzzing: random quantifier-free FO+
// queries over random graphs from every generator class, engine vs the
// naive semantics. This is the test that pins the whole pipeline
// (LNF -> cover -> kernels -> oracle -> skip pointers -> descent) to the
// paper's Theorem 2.3 contract.

#include <gtest/gtest.h>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/ast.h"
#include "fo/naive_eval.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "tests/property_common.h"
#include "util/rng.h"

namespace nwd {
namespace {

using testing_common::RandomGraph;
using testing_common::RandomQuery;

class EndToEndFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndFuzz, BinaryQueriesAgainstNaive) {
  Rng rng(1000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 4; ++round) {
    const ColoredGraph g = RandomGraph(round + GetParam(), 45, &rng);
    const fo::Query q = RandomQuery(2, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    fo::NaiveEvaluator naive(g);
    const std::vector<Tuple> expected = naive.AllSolutions(q);

    ConstantDelayEnumerator enumerator(engine);
    std::vector<Tuple> produced;
    for (auto t = enumerator.NextSolution(); t.has_value();
         t = enumerator.NextSolution()) {
      produced.push_back(*t);
    }
    ASSERT_EQ(produced, expected)
        << "query: " << fo::ToString(q) << " on " << g.DebugString();

    // Random Test() probes.
    for (int trial = 0; trial < 40; ++trial) {
      Tuple t{static_cast<Vertex>(
                  rng.NextBounded(static_cast<uint64_t>(g.NumVertices()))),
              static_cast<Vertex>(rng.NextBounded(
                  static_cast<uint64_t>(g.NumVertices())))};
      ASSERT_EQ(engine.Test(t), naive.TestTuple(q, t))
          << "query: " << fo::ToString(q);
    }
  }
}

TEST_P(EndToEndFuzz, TernaryQueriesAgainstNaive) {
  Rng rng(5000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 8;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 2; ++round) {
    const ColoredGraph g = RandomGraph(round + GetParam(), 20, &rng);
    const fo::Query q = RandomQuery(3, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    fo::NaiveEvaluator naive(g);
    const std::vector<Tuple> expected = naive.AllSolutions(q);

    ConstantDelayEnumerator enumerator(engine);
    std::vector<Tuple> produced;
    for (auto t = enumerator.NextSolution(); t.has_value();
         t = enumerator.NextSolution()) {
      produced.push_back(*t);
    }
    ASSERT_EQ(produced, expected) << "query: " << fo::ToString(q);
  }
}

TEST_P(EndToEndFuzz, NextFromRandomProbes) {
  Rng rng(9000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const ColoredGraph g = RandomGraph(GetParam(), 40, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  const EnumerationEngine engine(g, q, options);
  fo::NaiveEvaluator naive(g);
  const std::vector<Tuple> all = naive.AllSolutions(q);
  for (int trial = 0; trial < 80; ++trial) {
    Tuple from{static_cast<Vertex>(
                   rng.NextBounded(static_cast<uint64_t>(g.NumVertices()))),
               static_cast<Vertex>(rng.NextBounded(
                   static_cast<uint64_t>(g.NumVertices())))};
    const auto got = engine.Next(from);
    const auto it = std::lower_bound(
        all.begin(), all.end(), from,
        [](const Tuple& a, const Tuple& b) { return LexCompare(a, b) < 0; });
    if (it == all.end()) {
      ASSERT_FALSE(got.has_value()) << fo::ToString(q);
    } else {
      ASSERT_TRUE(got.has_value()) << fo::ToString(q);
      ASSERT_EQ(*got, *it) << fo::ToString(q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace nwd
