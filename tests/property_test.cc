// Cross-module, randomized end-to-end fuzzing: random quantifier-free FO+
// queries over random graphs from every generator class, engine vs the
// naive semantics. This is the test that pins the whole pipeline
// (LNF -> cover -> kernels -> oracle -> skip pointers -> descent) to the
// paper's Theorem 2.3 contract.

#include <gtest/gtest.h>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/ast.h"
#include "fo/naive_eval.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

// A random quantifier-free FO+ formula over `arity` free variables.
fo::FormulaPtr RandomFormula(int arity, int num_colors, int depth, Rng* rng) {
  if (depth == 0 || rng->NextBool(0.35)) {
    // Random atom.
    const int kind = static_cast<int>(rng->NextBounded(4));
    const fo::Var x = static_cast<fo::Var>(rng->NextBounded(arity));
    fo::Var y = static_cast<fo::Var>(rng->NextBounded(arity));
    switch (kind) {
      case 0:
        return fo::Color(static_cast<int>(rng->NextBounded(num_colors)), x);
      case 1:
        return x == y ? fo::Color(0, x) : fo::Edge(x, y);
      case 2:
        return fo::Equals(x, y);
      default:
        return fo::DistLeq(x, y, 1 + static_cast<int64_t>(rng->NextBounded(3)));
    }
  }
  const int op = static_cast<int>(rng->NextBounded(3));
  if (op == 0) return fo::Not(RandomFormula(arity, num_colors, depth - 1, rng));
  fo::FormulaPtr a = RandomFormula(arity, num_colors, depth - 1, rng);
  fo::FormulaPtr b = RandomFormula(arity, num_colors, depth - 1, rng);
  return op == 1 ? fo::And(a, b) : fo::Or(a, b);
}

fo::Query RandomQuery(int arity, int num_colors, Rng* rng) {
  fo::Query q;
  q.formula = RandomFormula(arity, num_colors, 3, rng);
  for (int i = 0; i < arity; ++i) q.free_vars.push_back(i);
  q.var_names = {"x", "y", "z", "w"};
  q.var_names.resize(static_cast<size_t>(arity));
  return q;
}

ColoredGraph RandomGraph(int kind, int64_t n, Rng* rng) {
  switch (kind % 5) {
    case 0:
      return gen::RandomTree(n, 0, {2, 0.35}, rng);
    case 1:
      return gen::BoundedDegreeGraph(n, 4, 2.2, {2, 0.35}, rng);
    case 2:
      return gen::Grid(std::max<int64_t>(2, n / 8), 8, {2, 0.35}, rng);
    case 3:
      return gen::RandomForest(n, 4, {2, 0.35}, rng);
    default:
      return gen::SubdividedClique(6, std::max<int64_t>(1, n / 15),
                                   {2, 0.35}, rng);
  }
}

class EndToEndFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndFuzz, BinaryQueriesAgainstNaive) {
  Rng rng(1000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 4; ++round) {
    const ColoredGraph g = RandomGraph(round + GetParam(), 45, &rng);
    const fo::Query q = RandomQuery(2, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    fo::NaiveEvaluator naive(g);
    const std::vector<Tuple> expected = naive.AllSolutions(q);

    ConstantDelayEnumerator enumerator(engine);
    std::vector<Tuple> produced;
    for (auto t = enumerator.NextSolution(); t.has_value();
         t = enumerator.NextSolution()) {
      produced.push_back(*t);
    }
    ASSERT_EQ(produced, expected)
        << "query: " << fo::ToString(q) << " on " << g.DebugString();

    // Random Test() probes.
    for (int trial = 0; trial < 40; ++trial) {
      Tuple t{static_cast<Vertex>(
                  rng.NextBounded(static_cast<uint64_t>(g.NumVertices()))),
              static_cast<Vertex>(rng.NextBounded(
                  static_cast<uint64_t>(g.NumVertices())))};
      ASSERT_EQ(engine.Test(t), naive.TestTuple(q, t))
          << "query: " << fo::ToString(q);
    }
  }
}

TEST_P(EndToEndFuzz, TernaryQueriesAgainstNaive) {
  Rng rng(5000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 8;
  options.oracle.small_cutoff = 8;
  for (int round = 0; round < 2; ++round) {
    const ColoredGraph g = RandomGraph(round + GetParam(), 20, &rng);
    const fo::Query q = RandomQuery(3, 2, &rng);
    const EnumerationEngine engine(g, q, options);
    fo::NaiveEvaluator naive(g);
    const std::vector<Tuple> expected = naive.AllSolutions(q);

    ConstantDelayEnumerator enumerator(engine);
    std::vector<Tuple> produced;
    for (auto t = enumerator.NextSolution(); t.has_value();
         t = enumerator.NextSolution()) {
      produced.push_back(*t);
    }
    ASSERT_EQ(produced, expected) << "query: " << fo::ToString(q);
  }
}

TEST_P(EndToEndFuzz, NextFromRandomProbes) {
  Rng rng(9000 + GetParam());
  EngineOptions options;
  options.naive_cutoff = 10;
  options.oracle.small_cutoff = 8;
  const ColoredGraph g = RandomGraph(GetParam(), 40, &rng);
  const fo::Query q = RandomQuery(2, 2, &rng);
  const EnumerationEngine engine(g, q, options);
  fo::NaiveEvaluator naive(g);
  const std::vector<Tuple> all = naive.AllSolutions(q);
  for (int trial = 0; trial < 80; ++trial) {
    Tuple from{static_cast<Vertex>(
                   rng.NextBounded(static_cast<uint64_t>(g.NumVertices()))),
               static_cast<Vertex>(rng.NextBounded(
                   static_cast<uint64_t>(g.NumVertices())))};
    const auto got = engine.Next(from);
    const auto it = std::lower_bound(
        all.begin(), all.end(), from,
        [](const Tuple& a, const Tuple& b) { return LexCompare(a, b) < 0; });
    if (it == all.end()) {
      ASSERT_FALSE(got.has_value()) << fo::ToString(q);
    } else {
      ASSERT_TRUE(got.has_value()) << fo::ToString(q);
      ASSERT_EQ(*got, *it) << fo::ToString(q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace nwd
