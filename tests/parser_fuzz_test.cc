// Parser robustness: randomized and systematically garbled query strings
// must never crash the parser; every rejection must carry a positioned
// one-line error. Runs under the ASan+UBSan twin too (ctest -L asan),
// which is what would catch the lexer's former signed-overflow path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/builder.h"
#include "local/edgeless_eval.h"
#include "util/rng.h"

namespace nwd {
namespace {

// Characters the lexer knows plus ones it must reject gracefully.
constexpr char kAlphabet[] =
    "abcxyzEC019(),.&|!<>=: \t$#@~%^*[]{}\"'\\\n\xE2\x82\xAC";

std::string RandomString(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBounded(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

void ExpectParsesOrFailsCleanly(const std::string& text) {
  for (const bool as_query : {true, false}) {
    const fo::ParseResult result =
        as_query ? fo::ParseQuery(text) : fo::ParseFormula(text);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty()) << "input: " << text;
      EXPECT_NE(result.error.find("position"), std::string::npos)
          << "input: " << text << "\nerror: " << result.error;
      EXPECT_EQ(result.error.find('\n'), std::string::npos)
          << "multi-line error for: " << text;
    }
  }
}

TEST(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0xF00D);
  for (int i = 0; i < 3000; ++i) {
    ExpectParsesOrFailsCleanly(RandomString(&rng, 64));
  }
}

// Mutations of valid queries: deletions, duplications, and character
// swaps hit the parser's recovery paths more often than pure noise.
TEST(ParserFuzz, MutatedValidQueriesNeverCrash) {
  const std::vector<std::string> seeds = {
      "(x, y) := E(x, y) & C0(x)",
      "(x, y) := dist(x, y) <= 4 | !C1(y)",
      "(x, y, z) := E(x, y) & dist(y, z) > 2 & x = z",
      "exists u. E(x, u) & C0(u)",
      "!(C0(x) & (C1(x) | E(x, y)))",
  };
  Rng rng(0xBEEF);
  for (const std::string& seed : seeds) {
    ExpectParsesOrFailsCleanly(seed);  // the seed itself first
    for (int m = 0; m < 400; ++m) {
      std::string s = seed;
      const int op = static_cast<int>(rng.NextBounded(3));
      const size_t pos = rng.NextBounded(s.size());
      if (op == 0) {
        s.erase(pos, 1 + rng.NextBounded(3));
      } else if (op == 1) {
        s.insert(pos, 1, kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
      } else {
        s[pos] = kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
      }
      ExpectParsesOrFailsCleanly(s);
    }
  }
}

// Adversarial literals: long digit strings must saturate, not overflow.
TEST(ParserFuzz, HugeNumbersSaturateCleanly) {
  const std::string huge(40, '9');
  ExpectParsesOrFailsCleanly("(x, y) := dist(x, y) <= " + huge);
  ExpectParsesOrFailsCleanly("(x, y) := C" + huge + "(x)");
  const fo::ParseResult r =
      fo::ParseQuery("(x, y) := dist(x, y) <= " + huge);
  // Whether accepted (with a saturated bound) or rejected, it must not
  // have wrapped to a negative bound.
  if (r.ok) {
    const std::string printed = fo::ToString(r.query);
    EXPECT_EQ(printed.find("-"), std::string::npos) << printed;
  }
}

// Pathological nesting must not blow the stack unreasonably; depth is
// bounded far below what the recursive-descent parser handles.
TEST(ParserFuzz, DeepNestingParses) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "!(";
  text += "C0(x)";
  for (int i = 0; i < 200; ++i) text += ")";
  ExpectParsesOrFailsCleanly(text);
}

// A tower of ~10k nested quantifiers. The parser folds the variable list
// in a loop (no recursion per quantifier) and the edgeless evaluator walks
// an explicit frame stack, so neither may overflow the call stack — the
// ASan twin, with its much larger native frames, is the canary. Variable
// names cycle through a small set so each frame's mentioned-vertex scan
// stays O(1) and evaluation short-circuits on the first full descent.
TEST(ParserFuzz, DeepQuantifierTowerParsesAndEvaluates) {
  constexpr int kDepth = 10000;
  constexpr int kVars = 8;
  std::string vars;
  for (int i = 0; i < kDepth; ++i) {
    if (i > 0) vars += ", ";
    vars += "u" + std::to_string(i % kVars);
  }

  GraphBuilder builder(4, 1);
  builder.SetColor(0, 0);
  const ColoredGraph g = std::move(builder).Build();
  EdgelessEvaluator eval(g);

  // Exists tower: true via the first full descent (vertex 0 has color 0).
  {
    const fo::ParseResult r =
        fo::ParseFormula("exists " + vars + ". C0(u7)");
    ASSERT_TRUE(r.ok) << r.error;
    std::vector<Vertex> env;
    EXPECT_TRUE(eval.Evaluate(r.query.formula, &env));
  }
  // Forall tower: false via the first full descent.
  {
    const fo::ParseResult r =
        fo::ParseFormula("forall " + vars + ". false");
    ASSERT_TRUE(r.ok) << r.error;
    std::vector<Vertex> env;
    EXPECT_FALSE(eval.Evaluate(r.query.formula, &env));
  }
}

TEST(ParserFuzz, EmptyAndWhitespaceInputs) {
  ExpectParsesOrFailsCleanly("");
  ExpectParsesOrFailsCleanly("   \t\n  ");
  ExpectParsesOrFailsCleanly("(x, y) :=");
  ExpectParsesOrFailsCleanly(":= E(x, y)");
  ExpectParsesOrFailsCleanly("(x, x) := E(x, x)");  // duplicate header vars
}

}  // namespace
}  // namespace nwd
