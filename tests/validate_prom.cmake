# Prometheus exposition conformance over a live daemon, run as a CTest
# script:
#   cmake -DNWD_STAT=<path-to-nwd-stat> -DNWDD=<path-to-nwdd>
#         -DWORK_DIR=<scratch dir> -P validate_prom.cmake
#
# nwd-stat spawns the daemon on a stdio pipe pair, scrapes
# `metrics format=prom`, and validates what a strict scraper would see:
# a # TYPE for every sample family, cumulative histogram buckets that are
# monotone and end in le="+Inf" == _count. This script layers the raw
# text checks on top (# HELP presence, naming convention) and exercises
# the --diff rate-table path on two real scrapes.

if(NOT DEFINED NWD_STAT OR NOT DEFINED NWDD OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DNWD_STAT=... -DNWDD=... -DWORK_DIR=... -P validate_prom.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

set(DAEMON_ARGS gen:tree:300:5 "(x, y) := E(x, y)")

# --- Conformance: the checker itself must pass against live nwdd ---------

execute_process(
  COMMAND ${NWD_STAT} --spawn ${NWDD} ${DAEMON_ARGS} --check
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  TIMEOUT 60)
if(NOT exit_code STREQUAL "0")
  message(SEND_ERROR
    "check: exposition nonconformant (exit '${exit_code}')\nstderr: ${err}")
endif()
if(NOT err MATCHES "0 conformance violation")
  message(SEND_ERROR "check: expected a clean violation count\nstderr: ${err}")
endif()

# --- Raw scrape: text-level conventions ----------------------------------

set(SCRAPE_A "${WORK_DIR}/scrape_a.prom")
execute_process(
  COMMAND ${NWD_STAT} --spawn ${NWDD} ${DAEMON_ARGS} --raw
  RESULT_VARIABLE exit_code
  OUTPUT_FILE "${SCRAPE_A}"
  ERROR_VARIABLE err
  TIMEOUT 60)
if(NOT exit_code STREQUAL "0")
  message(SEND_ERROR "raw: scrape failed (exit '${exit_code}')\nstderr: ${err}")
endif()
file(READ "${SCRAPE_A}" scrape)

# Every exposition the daemon serves must document and type its families.
# string(FIND) rather than MATCHES: the needles contain regex
# metacharacters ({, +) that must match literally.
foreach(needle
    "# HELP nwd_serve_requests_total"
    "# TYPE nwd_serve_requests_total counter"
    "# TYPE nwd_serve_epoch gauge"
    "# TYPE nwd_serve_request_ns histogram"
    "nwd_serve_request_ns_bucket{le=\"+Inf\"}"
    "nwd_serve_request_ns_sum"
    "nwd_serve_request_ns_count")
  string(FIND "${scrape}" "${needle}" needle_pos)
  if(needle_pos EQUAL -1)
    message(SEND_ERROR "raw: scrape missing '${needle}'")
  endif()
endforeach()

# The nwd_ prefix is the fleet namespace: every non-comment line uses it.
string(REGEX REPLACE "\n$" "" scrape_trimmed "${scrape}")
string(REPLACE "\n" ";" scrape_lines "${scrape_trimmed}")
foreach(line IN LISTS scrape_lines)
  if(NOT line STREQUAL "" AND NOT line MATCHES "^#" AND
     NOT line MATCHES "^nwd_")
    message(SEND_ERROR "raw: sample outside the nwd_ namespace: '${line}'")
  endif()
endforeach()

# --- Rate table over two scrapes -----------------------------------------

set(SCRAPE_B "${WORK_DIR}/scrape_b.prom")
execute_process(
  COMMAND ${NWD_STAT} --spawn ${NWDD} ${DAEMON_ARGS} --raw
  RESULT_VARIABLE exit_code
  OUTPUT_FILE "${SCRAPE_B}"
  ERROR_VARIABLE err
  TIMEOUT 60)
if(NOT exit_code STREQUAL "0")
  message(SEND_ERROR "raw_b: scrape failed (exit '${exit_code}')\nstderr: ${err}")
endif()

execute_process(
  COMMAND ${NWD_STAT} --diff "${SCRAPE_A}" "${SCRAPE_B}" --interval-s 1
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE err
  TIMEOUT 60)
if(NOT exit_code STREQUAL "0")
  message(SEND_ERROR "diff: failed (exit '${exit_code}')\nstderr: ${err}")
endif()
if(NOT diff_out MATCHES "metric" OR NOT diff_out MATCHES "rate/s")
  message(SEND_ERROR "diff: rate table header missing:\n${diff_out}")
endif()

# --- The checker has teeth -----------------------------------------------
# A deliberately broken exposition (non-monotone cumulative buckets, no
# +Inf == _count) must be parseable by --diff but the live --check path
# must fail on a daemon that cannot speak frames at all.

execute_process(
  COMMAND ${NWD_STAT} --spawn ${NWDD} gen:nope:1:1 "(x, y) := E(x, y)" --check
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  TIMEOUT 60)
if(exit_code STREQUAL "0")
  message(SEND_ERROR "check_dead: expected failure against a dead daemon")
endif()

execute_process(
  COMMAND ${NWD_STAT}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  TIMEOUT 60)
if(NOT exit_code STREQUAL "2")
  message(SEND_ERROR "usage: expected exit 2, got '${exit_code}'")
endif()
