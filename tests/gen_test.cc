#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/stats.h"
#include "splitter/strategy.h"
#include "util/rng.h"

namespace nwd {
namespace {

TEST(Generators, RandomTreeIsConnectedAcyclic) {
  Rng rng(1);
  const ColoredGraph g = gen::RandomTree(500, 0, {2, 0.3}, &rng);
  EXPECT_EQ(g.NumVertices(), 500);
  EXPECT_EQ(g.NumEdges(), 499);
  EXPECT_TRUE(IsForest(g));
  const auto comp = ConnectedComponents(g);
  for (int64_t c : comp) EXPECT_EQ(c, 0);
}

TEST(Generators, WindowedTreeIsPathLike) {
  Rng rng(2);
  const ColoredGraph g = gen::RandomTree(200, 1, {0, 0.0}, &rng);
  // attach_window = 1 forces parent = v-1: an actual path.
  EXPECT_EQ(MaxDegree(g), 2);
  EXPECT_TRUE(IsForest(g));
}

TEST(Generators, RandomForestHasRequestedComponents) {
  Rng rng(3);
  const ColoredGraph g = gen::RandomForest(300, 7, {1, 0.2}, &rng);
  EXPECT_TRUE(IsForest(g));
  const auto comp = ConnectedComponents(g);
  int64_t max_comp = 0;
  for (int64_t c : comp) max_comp = std::max(max_comp, c);
  EXPECT_EQ(max_comp + 1, 7);
}

TEST(Generators, BoundedDegreeRespectsCap) {
  Rng rng(4);
  const ColoredGraph g =
      gen::BoundedDegreeGraph(400, 5, 3.0, {1, 0.3}, &rng);
  EXPECT_LE(MaxDegree(g), 5);
  EXPECT_GT(g.NumEdges(), 400);  // roughly 600 expected
}

TEST(Generators, GridShape) {
  Rng rng(5);
  const ColoredGraph g = gen::Grid(6, 9, {0, 0.0}, &rng);
  EXPECT_EQ(g.NumVertices(), 54);
  EXPECT_EQ(g.NumEdges(), 6 * 8 + 5 * 9);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_LE(MaxDegree(g), 4);
}

TEST(Generators, CaterpillarShape) {
  Rng rng(6);
  const ColoredGraph g = gen::Caterpillar(10, 3, {0, 0.0}, &rng);
  EXPECT_EQ(g.NumVertices(), 40);
  EXPECT_EQ(g.NumEdges(), 9 + 30);
  EXPECT_TRUE(IsForest(g));
}

TEST(Generators, StarForestShape) {
  Rng rng(7);
  const ColoredGraph g = gen::StarForest(4, 6, {0, 0.0}, &rng);
  EXPECT_EQ(g.NumVertices(), 28);
  EXPECT_EQ(g.NumEdges(), 24);
  EXPECT_EQ(MaxDegree(g), 6);
}

TEST(Generators, SubdividedCliqueShape) {
  Rng rng(8);
  const ColoredGraph g = gen::SubdividedClique(5, 3, {0, 0.0}, &rng);
  // 5 + C(5,2)*3 inner vertices; each edge path has 4 segments.
  EXPECT_EQ(g.NumVertices(), 5 + 10 * 3);
  EXPECT_EQ(g.NumEdges(), 10 * 4);
  // Inner vertices have degree 2; originals degree 4.
  EXPECT_EQ(MaxDegree(g), 4);
  // Distance between two original vertices is subdivisions + 1.
  EXPECT_EQ(BoundedDistance(g, 0, 1, 10), 4);
}

TEST(Generators, CliqueIsComplete) {
  Rng rng(9);
  const ColoredGraph g = gen::Clique(7, {0, 0.0}, &rng);
  EXPECT_EQ(g.NumEdges(), 21);
}

TEST(Generators, ColorDensityIsPlausible) {
  Rng rng(10);
  const ColoredGraph g = gen::RandomTree(2000, 0, {1, 0.25}, &rng);
  const double fraction =
      static_cast<double>(g.ColorMembers(0).size()) / 2000.0;
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

TEST(Generators, DeterministicGivenSeed) {
  Rng rng_a(11);
  Rng rng_b(11);
  const ColoredGraph a = gen::ErdosRenyi(100, 3.0, {2, 0.4}, &rng_a);
  const ColoredGraph b = gen::ErdosRenyi(100, 3.0, {2, 0.4}, &rng_b);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (Vertex v = 0; v < 100; ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v));
    for (int c = 0; c < 2; ++c) ASSERT_EQ(a.HasColor(v, c), b.HasColor(v, c));
  }
}

}  // namespace
}  // namespace nwd
