#include <gtest/gtest.h>

#include "enumerate/counting.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

struct CountParams {
  int graph_kind;
  uint64_t seed;
};

ColoredGraph MakeGraph(int kind, Rng* rng) {
  switch (kind) {
    case 0:
      return gen::RandomTree(70, 0, {2, 0.3}, rng);
    case 1:
      return gen::BoundedDegreeGraph(70, 4, 2.2, {2, 0.3}, rng);
    case 2:
      return gen::Grid(8, 9, {2, 0.3}, rng);
    default:
      return gen::StarForest(10, 6, {2, 0.3}, rng);
  }
}

class CountingTest : public ::testing::TestWithParam<CountParams> {};

TEST_P(CountingTest, FastPathMatchesNaiveCount) {
  const CountParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  fo::NaiveEvaluator naive(g);

  std::vector<fo::Query> queries = {
      fo::DistanceQuery(2),
      fo::FarColorQuery(2, 0),
      fo::ColoredPairQuery(0, 1, 3),
  };
  const char* texts[] = {
      "E(x, y) & !C0(x)",
      "x = y | E(x, y)",
      "dist(x, y) <= 1 | (C0(x) & dist(x, y) <= 3)",
      "!(dist(x, y) <= 2) & !(x = y)",
  };
  for (const char* text : texts) {
    const fo::ParseResult r = fo::ParseFormula(text);
    ASSERT_TRUE(r.ok) << r.error;
    queries.push_back(r.query);
  }

  for (const fo::Query& q : queries) {
    const CountResult result = CountSolutions(g, q);
    EXPECT_TRUE(result.fast_path);
    EXPECT_EQ(result.count,
              static_cast<int64_t>(naive.AllSolutions(q).size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, CountingTest,
                         ::testing::Values(CountParams{0, 1},
                                           CountParams{1, 2},
                                           CountParams{2, 3},
                                           CountParams{3, 4}));

TEST(Counting, TernaryFallsBackToEnumeration) {
  Rng rng(5);
  const ColoredGraph g = gen::RandomTree(25, 0, {2, 0.4}, &rng);
  const fo::Query q = fo::TwoFarOneColorQuery(2, 0);
  const CountResult result = CountSolutions(g, q);
  EXPECT_FALSE(result.fast_path);
  fo::NaiveEvaluator naive(g);
  EXPECT_EQ(result.count,
            static_cast<int64_t>(naive.AllSolutions(q).size()));
}

TEST(Counting, QuantifiedQueryStillCounts) {
  Rng rng(6);
  const ColoredGraph g = gen::RandomTree(25, 0, {2, 0.4}, &rng);
  const fo::ParseResult r =
      fo::ParseFormula("exists z. E(x, z) & E(z, y)");
  ASSERT_TRUE(r.ok);
  const CountResult result = CountSolutions(g, r.query);
  EXPECT_FALSE(result.fast_path);
  fo::NaiveEvaluator naive(g);
  EXPECT_EQ(result.count,
            static_cast<int64_t>(naive.AllSolutions(r.query).size()));
}

TEST(Counting, EmptyAndFullExtremes) {
  Rng rng(7);
  const ColoredGraph g = gen::RandomTree(60, 0, {1, 0.0}, &rng);  // no colors
  // No vertex is C0-colored.
  const CountResult none = CountSolutions(g, fo::FarColorQuery(2, 0));
  EXPECT_EQ(none.count, 0);
  // Everything (tautology).
  const fo::ParseResult all = fo::ParseFormula("x = y | !(x = y)");
  ASSERT_TRUE(all.ok);
  const CountResult full = CountSolutions(g, all.query);
  EXPECT_EQ(full.count, 60 * 60);
}

TEST(Counting, CountsScaleOnLargerInputs) {
  // The fast path must handle sizes where naive counting (n^2 tests) is
  // already painful; sanity-check internal consistency instead of ground
  // truth: |far pairs| + |near pairs| == |A| * |B|.
  Rng rng(8);
  const ColoredGraph g = gen::RandomTree(20000, 0, {1, 0.3}, &rng);
  const int64_t blues = static_cast<int64_t>(g.ColorMembers(0).size());
  const fo::ParseResult far = fo::ParseFormula("!(dist(x,y) <= 2) & C0(y)");
  const fo::ParseResult near = fo::ParseFormula("dist(x,y) <= 2 & C0(y)");
  ASSERT_TRUE(far.ok);
  ASSERT_TRUE(near.ok);
  const CountResult far_count = CountSolutions(g, far.query);
  const CountResult near_count = CountSolutions(g, near.query);
  EXPECT_TRUE(far_count.fast_path);
  EXPECT_EQ(far_count.count + near_count.count,
            g.NumVertices() * blues);
}

}  // namespace
}  // namespace nwd
