// Option-grid robustness: the engine must produce identical answers no
// matter how the practical knobs (naive cutoff, oracle cutoffs, depth
// caps, work budgets) are set — the knobs trade speed, never correctness.

#include <gtest/gtest.h>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

struct OptionsParams {
  int64_t naive_cutoff;
  int64_t oracle_small_cutoff;
  int oracle_max_lambda;
  int64_t work_budget;
};

class OptionsGridTest : public ::testing::TestWithParam<OptionsParams> {};

TEST_P(OptionsGridTest, AnswersAreOptionIndependent) {
  const OptionsParams params = GetParam();
  Rng rng(7);
  const ColoredGraph g = gen::RandomTree(70, 0, {2, 0.35}, &rng);

  EngineOptions options;
  options.naive_cutoff = params.naive_cutoff;
  options.oracle.small_cutoff = params.oracle_small_cutoff;
  options.oracle.max_lambda = params.oracle_max_lambda;
  options.oracle.work_budget_multiplier = params.work_budget;

  fo::NaiveEvaluator naive(g);
  for (const fo::Query& q :
       {fo::DistanceQuery(2), fo::FarColorQuery(2, 0)}) {
    const EnumerationEngine engine(g, q, options);
    const std::vector<Tuple> expected = naive.AllSolutions(q);
    ConstantDelayEnumerator enumerator(engine);
    std::vector<Tuple> produced;
    for (auto t = enumerator.NextSolution(); t.has_value();
         t = enumerator.NextSolution()) {
      produced.push_back(*t);
    }
    EXPECT_EQ(produced, expected)
        << "cutoff=" << params.naive_cutoff
        << " oracle_cutoff=" << params.oracle_small_cutoff
        << " lambda=" << params.oracle_max_lambda
        << " budget=" << params.work_budget;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptionsGridTest,
    ::testing::Values(OptionsParams{0, 1, 1, 1},     // everything minimal
                      OptionsParams{0, 1, 12, 8},    // deep recursion
                      OptionsParams{0, 64, 2, 2},    // shallow, big leaves
                      OptionsParams{10, 8, 6, 4},    // the test default
                      OptionsParams{200, 8, 6, 4},   // cutoff above n
                      OptionsParams{0, 1000, 12, 100}));

}  // namespace
}  // namespace nwd
