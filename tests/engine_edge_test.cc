// Edge cases and cross-module integrations for the enumeration engine:
// degenerate graphs, higher arities, and queries over relational
// adjacency graphs (the full Lemma 2.2 -> engine pipeline).

#include <gtest/gtest.h>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "relational/adjacency_graph.h"
#include "relational/database.h"
#include "util/rng.h"

namespace nwd {
namespace {

TEST(EngineEdge, EmptyGraph) {
  GraphBuilder builder(0, 1);
  const ColoredGraph g = std::move(builder).Build();
  const EnumerationEngine engine(g, fo::DistanceQuery(2));
  EXPECT_FALSE(engine.First().has_value());
  ConstantDelayEnumerator enumerator(engine);
  EXPECT_FALSE(enumerator.NextSolution().has_value());
}

TEST(EngineEdge, SingleVertex) {
  GraphBuilder builder(1, 1);
  builder.SetColor(0, 0);
  const ColoredGraph g = std::move(builder).Build();
  const EnumerationEngine engine(g, fo::DistanceQuery(2));
  // Only (0, 0), at distance 0.
  const auto first = engine.First();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (Tuple{0, 0}));
  EXPECT_TRUE(engine.Test({0, 0}));
}

TEST(EngineEdge, NextAtLexicographicMaximum) {
  Rng rng(1);
  const ColoredGraph g = gen::RandomTree(60, 0, {1, 0.5}, &rng);
  EngineOptions options;
  options.naive_cutoff = 10;
  const EnumerationEngine engine(g, fo::DistanceQuery(1), options);
  const Tuple max = LexMax(2, g.NumVertices());
  const auto at_max = engine.Next(max);
  // (n-1, n-1) is always a solution of dist <= 1 (distance 0).
  ASSERT_TRUE(at_max.has_value());
  EXPECT_EQ(*at_max, max);
}

TEST(EngineEdge, ArityFourQueryMatchesNaive) {
  Rng rng(2);
  const ColoredGraph g = gen::RandomTree(12, 0, {2, 0.4}, &rng);
  const fo::ParseResult r = fo::ParseFormula(
      "C0(x) & E(x, y) & !(dist(y, z) <= 1) & C1(w) & !(w = x)");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.query.arity(), 4);
  EngineOptions options;
  options.naive_cutoff = 4;
  options.oracle.small_cutoff = 6;
  const EnumerationEngine engine(g, r.query, options);
  EXPECT_FALSE(engine.used_fallback()) << engine.stats().fallback_reason;
  fo::NaiveEvaluator naive(g);
  const std::vector<Tuple> expected = naive.AllSolutions(r.query);
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> produced;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    produced.push_back(*t);
  }
  EXPECT_EQ(produced, expected);
}

TEST(EngineEdge, DisconnectedGraphFarQueries) {
  // Components make "far" trivial across components; the skip machinery
  // must handle bags that never interact.
  Rng rng(3);
  const ColoredGraph g = gen::StarForest(12, 5, {2, 0.4}, &rng);
  EngineOptions options;
  options.naive_cutoff = 10;
  const EnumerationEngine engine(g, fo::FarColorQuery(2, 0), options);
  fo::NaiveEvaluator naive(g);
  const std::vector<Tuple> expected =
      naive.AllSolutions(fo::FarColorQuery(2, 0));
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> produced;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    produced.push_back(*t);
  }
  EXPECT_EQ(produced, expected);
}

// The full pipeline: relational database -> A'(D) -> quantifier-free
// colored-graph query -> LNF engine. In A'(D), two elements co-occur in a
// fact iff their distance is exactly 4 (element-position-fact-position-
// element), so "co-author" queries are distance queries.
TEST(EngineEdge, CoOccurrenceOverAdjacencyGraph) {
  relational::Schema schema;
  schema.AddRelation("Wrote", 2);
  relational::Database db(schema, 12);
  Rng rng(4);
  for (int f = 0; f < 14; ++f) {
    db.AddFact("Wrote", {rng.NextInt(0, 5), rng.NextInt(6, 11)});
  }
  const relational::AdjacencyGraph a = relational::BuildAdjacencyGraph(db);

  // q(x, y): elements linked through one fact (distance exactly 4 in the
  // 1-subdivided incidence graph), excluding x = y.
  std::ostringstream text;
  text << "C" << a.element_color << "(x) & C" << a.element_color
       << "(y) & dist(x, y) <= 4 & !(dist(x, y) <= 3) & !(x = y)";
  const fo::ParseResult r = fo::ParseFormula(text.str());
  ASSERT_TRUE(r.ok) << r.error;

  EngineOptions options;
  options.naive_cutoff = 10;
  const EnumerationEngine engine(a.graph, r.query, options);
  EXPECT_FALSE(engine.used_fallback()) << engine.stats().fallback_reason;

  fo::NaiveEvaluator naive(a.graph);
  const std::vector<Tuple> expected = naive.AllSolutions(r.query);
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> produced;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    produced.push_back(*t);
  }
  ASSERT_EQ(produced, expected);

  // Sanity: every produced pair shares a fact in the database.
  for (const Tuple& t : produced) {
    bool shares = false;
    for (const Tuple& fact : db.Facts(0)) {
      const bool has_x = fact[0] == t[0] || fact[1] == t[0];
      const bool has_y = fact[0] == t[1] || fact[1] == t[1];
      if (has_x && has_y) shares = true;
    }
    EXPECT_TRUE(shares) << "(" << t[0] << "," << t[1] << ")";
  }
}

// Guarded-local unary patterns over A'(D): "x occurs in some Wrote fact",
// written guard-first so the extraction applies.
TEST(EngineEdge, GuardedRelationalPatternOverAdjacencyGraph) {
  relational::Schema schema;
  schema.AddRelation("Wrote", 2);
  relational::Database db(schema, 14);
  Rng rng(5);
  for (int f = 0; f < 10; ++f) {
    db.AddFact("Wrote", {rng.NextInt(0, 6), rng.NextInt(7, 13)});
  }
  const relational::AdjacencyGraph a = relational::BuildAdjacencyGraph(db);

  // active(v) := exists z (E(v,z) & C_pos1(z) & exists t (E(z,t) &
  //              P_Wrote(t))) — every quantifier guarded by an edge.
  std::ostringstream text;
  text << "C" << a.element_color << "(x) & C" << a.element_color << "(y) & "
       << "!(dist(x, y) <= 4) & "
       << "(exists z. E(x, z) & C" << a.position_color_base << "(z) & "
       << "(exists t. E(z, t) & C" << a.relation_color_base << "(t)))";
  const fo::ParseResult r = fo::ParseFormula(text.str());
  ASSERT_TRUE(r.ok) << r.error;

  EngineOptions options;
  options.naive_cutoff = 10;
  const EnumerationEngine engine(a.graph, r.query, options);
  EXPECT_FALSE(engine.used_fallback()) << engine.stats().fallback_reason;
  EXPECT_GT(engine.stats().local_unaries, 0);

  fo::NaiveEvaluator naive(a.graph);
  const std::vector<Tuple> expected = naive.AllSolutions(r.query);
  ConstantDelayEnumerator enumerator(engine);
  std::vector<Tuple> produced;
  for (auto t = enumerator.NextSolution(); t.has_value();
       t = enumerator.NextSolution()) {
    produced.push_back(*t);
  }
  EXPECT_EQ(produced, expected);
}

TEST(EngineEdge, ProbeOutOfRangeIsRejected) {
  Rng rng(6);
  const ColoredGraph g = gen::RandomTree(20, 0, {1, 0.5}, &rng);
  const EnumerationEngine engine(g, fo::DistanceQuery(2));
  EXPECT_DEATH(engine.Next({0, 25}), "out of range");
}

}  // namespace
}  // namespace nwd
