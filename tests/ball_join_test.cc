#include <gtest/gtest.h>

#include "baseline/ball_join.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

TEST(BallJoin, MatchesNaiveOnDistanceQuery) {
  Rng rng(1);
  const ColoredGraph g = gen::RandomTree(60, 0, {1, 0.4}, &rng);
  BallJoinEnumerator joiner(g, 2);
  const std::vector<Tuple> got =
      joiner.AllSolutions([](Vertex, Vertex, int64_t) { return true; });
  fo::NaiveEvaluator naive(g);
  EXPECT_EQ(got, naive.AllSolutions(fo::DistanceQuery(2)));
}

TEST(BallJoin, FiltersByDistanceAndColor) {
  Rng rng(2);
  const ColoredGraph g = gen::Grid(7, 8, {1, 0.4}, &rng);
  BallJoinEnumerator joiner(g, 3);
  // dist(x, y) <= 3 & C0(y) & dist(x, y) > 1.
  const std::vector<Tuple> got = joiner.AllSolutions(
      [&g](Vertex, Vertex b, int64_t dist) {
        return dist > 1 && g.HasColor(b, 0);
      });
  const fo::ParseResult r =
      fo::ParseFormula("dist(x,y) <= 3 & !(dist(x,y) <= 1) & C0(y)");
  ASSERT_TRUE(r.ok);
  fo::NaiveEvaluator naive(g);
  EXPECT_EQ(got, naive.AllSolutions(r.query));
}

TEST(BallJoin, EarlyStop) {
  Rng rng(3);
  const ColoredGraph g = gen::RandomTree(40, 0, {0, 0.0}, &rng);
  BallJoinEnumerator joiner(g, 2);
  int64_t seen = 0;
  joiner.Enumerate([](Vertex, Vertex, int64_t) { return true; },
                   [&seen](const Tuple&) {
                     ++seen;
                     return seen < 5;
                   });
  EXPECT_EQ(seen, 5);
}

TEST(BallJoin, OutputIsLexicographic) {
  Rng rng(4);
  const ColoredGraph g = gen::BoundedDegreeGraph(50, 4, 2.0, {0, 0.0}, &rng);
  BallJoinEnumerator joiner(g, 2);
  const std::vector<Tuple> got =
      joiner.AllSolutions([](Vertex, Vertex, int64_t) { return true; });
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(LexCompare(got[i - 1], got[i]), 0);
  }
}

}  // namespace
}  // namespace nwd
