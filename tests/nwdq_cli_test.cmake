# Error-contract test for the nwdq binary, run as a CTest script:
#   cmake -DNWDQ=<path-to-nwdq> -DWORK_DIR=<scratch dir> -P nwdq_cli_test.cmake
#
# Contract under test: exit 0 on success (including budget-degraded runs),
# 1 on bad data, 2 on usage errors; every failure is a one-line stderr
# diagnostic and no input makes the binary abort (exit codes >= 128 would
# reveal a signal death).

if(NOT DEFINED NWDQ OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DNWDQ=... -DWORK_DIR=... -P nwdq_cli_test.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FAILURES 0)

# run(<name> <expected-exit> <stderr-substring-or-empty> <args...>)
function(run name expected_exit stderr_substring)
  execute_process(
    COMMAND ${NWDQ} ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 60)
  if(NOT exit_code STREQUAL "${expected_exit}")
    message(SEND_ERROR
      "${name}: expected exit ${expected_exit}, got '${exit_code}'\n"
      "stderr: ${err}")
  endif()
  if(NOT stderr_substring STREQUAL "")
    if(NOT err MATCHES "${stderr_substring}")
      message(SEND_ERROR
        "${name}: stderr missing '${stderr_substring}'\nstderr: ${err}")
    endif()
    # One-line contract for data errors (exit 1). Usage errors (exit 2)
    # may print the multi-line usage synopsis.
    if(expected_exit STREQUAL "1")
      string(REGEX REPLACE "\n$" "" err_trimmed "${err}")
      string(REGEX MATCHALL "\n" newlines "${err_trimmed}")
      list(LENGTH newlines newline_count)
      if(newline_count GREATER 0)
        message(SEND_ERROR
          "${name}: expected a one-line stderr diagnostic, got:\n${err}")
      endif()
    endif()
  endif()
  set(LAST_STDOUT "${out}" PARENT_SCOPE)
endfunction()

# --- Fixtures -------------------------------------------------------------

set(GOOD_GRAPH "${WORK_DIR}/good.g")
file(WRITE "${GOOD_GRAPH}" "graph 4 2\ne 0 1\ne 1 2\nc 0 0\nc 3 1\n")

set(BAD_RANGE_GRAPH "${WORK_DIR}/bad_range.g")
file(WRITE "${BAD_RANGE_GRAPH}" "graph 4 1\ne 0 9\n")

set(HUGE_HEADER_GRAPH "${WORK_DIR}/huge.g")
file(WRITE "${HUGE_HEADER_GRAPH}" "graph 99999999999999999999 2\n")

set(TRUNCATED_GRAPH "${WORK_DIR}/truncated.g")
file(WRITE "${TRUNCATED_GRAPH}" "graph 4 1\ne 0\n")

# A 60-vertex clique: big enough to bypass the naive cutoff, dense enough
# that a one-unit work cap trips deterministically at the cover stage.
set(CLIQUE_GRAPH "${WORK_DIR}/clique60.g")
set(clique_lines "graph 60 1\n")
foreach(u RANGE 0 59)
  foreach(v RANGE 0 59)
    if(u LESS v)
      string(APPEND clique_lines "e ${u} ${v}\n")
    endif()
  endforeach()
endforeach()
file(WRITE "${CLIQUE_GRAPH}" "${clique_lines}")

set(GOOD_PROBES "${WORK_DIR}/good.probes")
file(WRITE "${GOOD_PROBES}"
  "# mixed probe kinds; blank lines and comments are skipped\n"
  "\n"
  "test 0,1\n"
  "next 0,0\n"
  "1,2\n"
  "  next 3,3\n")

set(BAD_PARSE_PROBES "${WORK_DIR}/bad_parse.probes")
file(WRITE "${BAD_PARSE_PROBES}" "test 0,1\nnext 1,2,3\n")

# The same probes as GOOD_PROBES minus the leading comment, but with CRLF
# line endings and no newline after the final line — both must parse.
set(CRLF_PROBES "${WORK_DIR}/crlf.probes")
file(WRITE "${CRLF_PROBES}"
  "test 0,1\r\n\r\nnext 0,0\r\n1,2\r\n  next 3,3")

set(EMPTY_PROBES "${WORK_DIR}/empty.probes")
file(WRITE "${EMPTY_PROBES}" "")

set(TRAILING_COMMA_PROBES "${WORK_DIR}/trailing_comma.probes")
file(WRITE "${TRAILING_COMMA_PROBES}" "test 0,1\ntest 1,2,\n")

set(BAD_RANGE_PROBES "${WORK_DIR}/bad_range.probes")
file(WRITE "${BAD_RANGE_PROBES}" "test 0,1\ntest 0,99\n")

# --- Usage errors: exit 2 -------------------------------------------------

run(no_args 2 "usage:")
run(one_arg 2 "usage:" "${GOOD_GRAPH}")
run(unknown_flag 2 "usage:" "${GOOD_GRAPH}" "(x, y) := E(x, y)" --frobnicate)
run(bad_limit 2 "expects an integer" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --limit 1x0)
run(negative_limit 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --limit -5)
run(bad_budget_ms 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --budget-ms zero)
run(zero_budget_ms 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --budget-ms 0)
run(bad_edge_work 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --max-edge-work 10kk)
run(bad_avg_degree 2 "expects a number" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --max-avg-degree dense)
run(bad_color_binding 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --color Blue=x)
run(bad_answer_threads 2 "expects an integer" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --answer-threads 0)

# --- Data errors: exit 1, one-line stderr ---------------------------------

run(missing_graph 1 "error:" "${WORK_DIR}/nonexistent.g" "(x, y) := E(x, y)")
run(edge_out_of_range 1 "out of range" "${BAD_RANGE_GRAPH}"
    "(x, y) := E(x, y)")
run(huge_header 1 "error:" "${HUGE_HEADER_GRAPH}" "(x, y) := E(x, y)")
run(truncated_record 1 "expected" "${TRUNCATED_GRAPH}" "(x, y) := E(x, y)")
run(bad_query 1 "query error" "${GOOD_GRAPH}" "(x, y) := E(x, &&& y)")
run(query_color_out_of_range 1 "out of range" "${GOOD_GRAPH}"
    "(x, y) := C7(x) & E(x, y)")
run(bad_test_tuple 1 "bad --test" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --test 1,2,3)
run(test_tuple_out_of_range 1 "outside the graph" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --test 1,99)
run(next_tuple_out_of_range 1 "outside the graph" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --next -3,0)
run(missing_probe_file 1 "cannot read probe file" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --probe-file "${WORK_DIR}/nonexistent.probes")
run(probe_file_bad_line 1 "comma-separated" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --probe-file "${BAD_PARSE_PROBES}")
if(LAST_STDOUT MATCHES "test \\(0, 1\\)")
  message(SEND_ERROR
    "partial batch served before parse error:\n${LAST_STDOUT}")
endif()
run(probe_file_out_of_range 1 "outside the graph" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --probe-file "${BAD_RANGE_PROBES}")
run(probe_file_trailing_comma 1 "comma-separated" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --probe-file "${TRAILING_COMMA_PROBES}")
# Bad batch input is all-or-nothing: the good first line of the malformed
# file must not have been answered before the parse error.
if(LAST_STDOUT MATCHES "test \\(0, 1\\)")
  message(SEND_ERROR
    "partial batch served before parse error:\n${LAST_STDOUT}")
endif()
run(test_trailing_comma 1 "bad --test" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --test 1,2,)
run(metrics_json_unwritable 1 "cannot write metrics file" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --metrics-json "${WORK_DIR}/no_such_dir/m.json")
run(trace_json_unwritable 1 "cannot write trace file" "${GOOD_GRAPH}"
    "(x, y) := E(x, y)" --trace-json "${WORK_DIR}/no_such_dir/t.json")

# --- Success paths: exit 0 ------------------------------------------------

run(plain_success 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)" --limit 3)
if(NOT LAST_STDOUT MATCHES "\\(0, 1\\)")
  message(SEND_ERROR "plain_success: expected solution (0, 1); got:\n${LAST_STDOUT}")
endif()

# Deterministic degraded run: a one-unit edge-work cap trips at the first
# preprocessing stage; the binary must still exit 0 and produce correct
# solutions through the lazy baseline.
run(degraded_edge_work 0 "" "${CLIQUE_GRAPH}" "(x, y) := E(x, y)"
    --max-edge-work 1 --limit 3)
if(NOT LAST_STDOUT MATCHES "degraded: stage engine/")
  message(SEND_ERROR "degraded_edge_work: no degraded banner:\n${LAST_STDOUT}")
endif()
if(NOT LAST_STDOUT MATCHES "\\(0, 1\\)")
  message(SEND_ERROR "degraded_edge_work: wrong solutions:\n${LAST_STDOUT}")
endif()

# Density guard: same degraded contract, attributed to the density stage.
run(degraded_density 0 "" "${CLIQUE_GRAPH}" "(x, y) := E(x, y)"
    --max-avg-degree 5 --limit 3)
if(NOT LAST_STDOUT MATCHES "degraded: stage engine/density")
  message(SEND_ERROR "degraded_density: no density banner:\n${LAST_STDOUT}")
endif()

# Wall-clock budget on the clique: must exit 0 promptly with correct
# output whether or not the deadline tripped before completion.
run(budget_ms_success 0 "" "${CLIQUE_GRAPH}" "(x, y) := E(x, y)"
    --budget-ms 50 --limit 3)
if(NOT LAST_STDOUT MATCHES "\\(0, 1\\)")
  message(SEND_ERROR "budget_ms_success: wrong solutions:\n${LAST_STDOUT}")
endif()

# Batched probe serving: answers come back in input order, one line per
# probe, with the summary trailer; --answer-threads must not change them.
foreach(threads 1 2)
  run(probe_file_threads_${threads} 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
      --probe-file "${GOOD_PROBES}" --answer-threads ${threads})
  if(NOT LAST_STDOUT MATCHES
     "test \\(0, 1\\) = solution.*next \\(0, 0\\) = \\(0, 1\\).*test \\(1, 2\\) = solution.*next \\(3, 3\\) = none.*served 4 probes")
    message(SEND_ERROR
      "probe_file_threads_${threads}: wrong probe answers:\n${LAST_STDOUT}")
  endif()
endforeach()

# CRLF line endings and a final line without trailing newline must serve
# the same four probes as the POSIX-formatted file.
run(probe_file_crlf 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --probe-file "${CRLF_PROBES}")
if(NOT LAST_STDOUT MATCHES
   "test \\(0, 1\\) = solution.*next \\(0, 0\\) = \\(0, 1\\).*test \\(1, 2\\) = solution.*next \\(3, 3\\) = none.*served 4 probes")
  message(SEND_ERROR "probe_file_crlf: wrong probe answers:\n${LAST_STDOUT}")
endif()

# An empty probe file is a valid (if pointless) batch of zero probes.
run(probe_file_empty 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --probe-file "${EMPTY_PROBES}")
if(NOT LAST_STDOUT MATCHES "served 0 probes")
  message(SEND_ERROR "probe_file_empty: expected zero-probe summary:\n${LAST_STDOUT}")
endif()

# Observability artifacts: both exports must be written, parse as JSON,
# and carry their schema markers plus answer-path coverage.
set(METRICS_JSON "${WORK_DIR}/metrics.json")
set(TRACE_JSON "${WORK_DIR}/trace.json")
run(obs_export 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --probe-file "${GOOD_PROBES}"
    --metrics-json "${METRICS_JSON}" --trace-json "${TRACE_JSON}")
foreach(artifact "${METRICS_JSON}" "${TRACE_JSON}")
  if(NOT EXISTS "${artifact}")
    message(SEND_ERROR "obs_export: missing artifact ${artifact}")
  endif()
endforeach()
file(READ "${METRICS_JSON}" metrics_doc)
string(JSON metrics_schema ERROR_VARIABLE json_err GET "${metrics_doc}" schema)
if(NOT json_err STREQUAL "NOTFOUND" OR
   NOT metrics_schema STREQUAL "nwd-metrics/1")
  message(SEND_ERROR "obs_export: bad metrics JSON (${json_err}):\n${metrics_doc}")
endif()
string(JSON probes_served GET "${metrics_doc}" counters answer.probes_served)
if(NOT probes_served STREQUAL "4")
  message(SEND_ERROR
    "obs_export: expected 4 drained probes, got '${probes_served}'")
endif()
file(READ "${TRACE_JSON}" trace_doc)
string(JSON trace_events ERROR_VARIABLE json_err GET "${trace_doc}" traceEvents)
if(NOT json_err STREQUAL "NOTFOUND")
  message(SEND_ERROR "obs_export: bad trace JSON (${json_err}):\n${trace_doc}")
endif()
if(NOT trace_doc MATCHES "engine/prepare")
  message(SEND_ERROR "obs_export: trace lacks the prepare span:\n${trace_doc}")
endif()

# --- SIGPIPE robustness ---------------------------------------------------
# Piping a large enumeration into a consumer that exits early (head -n 2)
# closes the pipe mid-stream. The writer must treat that as a clean end of
# output and exit 0 — not die of SIGPIPE (exit 141) or report an error.
# The 100-vertex clique under a one-unit work cap enumerates ~19k lines,
# comfortably past the kernel pipe buffer, so the closed pipe is actually
# observed.
find_program(BASH_PROGRAM bash)
if(BASH_PROGRAM)
  set(BIG_CLIQUE_GRAPH "${WORK_DIR}/clique100.g")
  set(big_clique_lines "graph 100 1\n")
  foreach(u RANGE 0 99)
    foreach(v RANGE 0 99)
      if(u LESS v)
        string(APPEND big_clique_lines "e ${u} ${v}\n")
      endif()
    endforeach()
  endforeach()
  file(WRITE "${BIG_CLIQUE_GRAPH}" "${big_clique_lines}")
  execute_process(
    COMMAND ${BASH_PROGRAM} -c
      "\"$1\" \"$2\" '(x, y) := E(x, y)' --max-edge-work 1 | head -n 2 > /dev/null; exit \${PIPESTATUS[0]}"
      bash ${NWDQ} ${BIG_CLIQUE_GRAPH}
    RESULT_VARIABLE exit_code
    ERROR_VARIABLE err
    TIMEOUT 60)
  if(NOT exit_code STREQUAL "0")
    message(SEND_ERROR
      "sigpipe_head: expected exit 0 when the output pipe closes early, "
      "got '${exit_code}'\nstderr: ${err}")
  endif()
endif()

# --- Compiled-program dump: golden output ---------------------------------
# The bytecode listing is the debugging interface for the query compiler;
# pin it exactly (modulo the timing line and trailing pad spaces) so any
# lowering or peephole change shows up as a reviewable diff here.
set(PATH_GRAPH "${WORK_DIR}/path60.g")
set(path_lines "graph 60 2\n")
foreach(u RANGE 0 58)
  math(EXPR v "${u} + 1")
  string(APPEND path_lines "e ${u} ${v}\n")
endforeach()
foreach(v RANGE 0 59 2)
  string(APPEND path_lines "c ${v} 0\n")
endforeach()
foreach(v RANGE 0 59 3)
  string(APPEND path_lines "c ${v} 1\n")
endforeach()
file(WRITE "${PATH_GRAPH}" "${path_lines}")

run(dump_program 0 "" "${PATH_GRAPH}" "(x, y) := dist(x, y) > 1 & C0(x)"
    --dump-program)
string(REGEX REPLACE "preprocessing: [^\n]*\n" "" dump_out "${LAST_STDOUT}")
string(REGEX REPLACE " +\n" "\n" dump_out "${dump_out}")
set(expected_dump "loaded graph(n=60, m=59, c=2)
query: (x, y) := !(dist(x, y) <= 1) & C0(x)
compiled query: arity=2 radius=1 ball_radius=1
cases: 1 live of 1 (0 dead), folds: color=0 dist=0 dedup=0, specialized finds=2
test program (4 insns, 1 memo regs):
  [  0] br_color  pos=0 color=0 expect=1 -> 1 else 3
  [  1] br_dist   pos=0,1 bound=1 expect=0 reg=0 -> 2 else 3
  [  2] accept
  [  3] reject
next program (7 insns):
  case 0 entry=0
  [  0] init      pos=0 -> 1
  [  1] find_ext0 pos=0 ext=0 -> 2 else 6
  [  2] init      pos=1 -> 3
  [  3] find_skip pos=1 list=1 checks=[0+1) -> 5 else 4
  [  4] bump      pos=0 -> 1
  [  5] found
  [  6] fail
checks (1):
  [  0] dist other=0 bound=1 expect=0
")
if(NOT dump_out STREQUAL expected_dump)
  message(SEND_ERROR
    "dump_program: bytecode listing drifted from the golden output.\n"
    "expected:\n${expected_dump}\ngot:\n${dump_out}")
endif()

# The metrics export carries the compilation plane's counters: one program
# compiled for this engine build, and live per-op execution counts.
set(COMPILE_METRICS_JSON "${WORK_DIR}/compile_metrics.json")
run(compile_metrics 0 "" "${PATH_GRAPH}" "(x, y) := dist(x, y) > 1 & C0(x)"
    --limit 5 --metrics-json "${COMPILE_METRICS_JSON}")
file(READ "${COMPILE_METRICS_JSON}" compile_metrics_doc)
string(JSON compile_programs ERROR_VARIABLE json_err
       GET "${compile_metrics_doc}" counters compile.programs)
if(NOT json_err STREQUAL "NOTFOUND" OR NOT compile_programs STREQUAL "1")
  message(SEND_ERROR
    "compile_metrics: expected counters.compile.programs = 1 "
    "(${json_err}), got '${compile_programs}'")
endif()
string(JSON compile_probes ERROR_VARIABLE json_err
       GET "${compile_metrics_doc}" counters compile.exec.probes)
if(NOT json_err STREQUAL "NOTFOUND" OR compile_probes LESS_EQUAL 0)
  message(SEND_ERROR
    "compile_metrics: expected counters.compile.exec.probes > 0 "
    "(${json_err}), got '${compile_probes}'")
endif()

# A query whose only case folds dead (C0 never holds on the uncolored
# clique) still compiles; the dump must say so rather than crash.
run(dump_program_dead 0 "" "${CLIQUE_GRAPH}" "(x, y) := dist(x, y) > 1 & C0(x)"
    --dump-program)
if(NOT LAST_STDOUT MATCHES "1 dead" OR
   NOT LAST_STDOUT MATCHES "entry=-1 \\(dead\\)")
  message(SEND_ERROR "dump_program_dead: expected a dead case:\n${LAST_STDOUT}")
endif()

# The naive fallback engine has no LNF, hence no program to dump.
run(dump_program_fallback 0 "" "${GOOD_GRAPH}" "(x, y) := E(x, y)"
    --dump-program)
if(NOT LAST_STDOUT MATCHES "no compiled program \\(fallback engine has no LNF\\)")
  message(SEND_ERROR "dump_program_fallback: wrong output:\n${LAST_STDOUT}")
endif()

# --test / --next still work on a degraded engine.
run(degraded_test 0 "" "${CLIQUE_GRAPH}" "(x, y) := E(x, y)"
    --max-edge-work 1 --test 3,7)
if(NOT LAST_STDOUT MATCHES "= solution")
  message(SEND_ERROR "degraded_test: wrong --test output:\n${LAST_STDOUT}")
endif()
run(degraded_next 0 "" "${CLIQUE_GRAPH}" "(x, y) := E(x, y)"
    --max-edge-work 1 --next 59,59)
if(NOT LAST_STDOUT MATCHES "= none")
  message(SEND_ERROR "degraded_next: wrong --next output:\n${LAST_STDOUT}")
endif()
