#include <gtest/gtest.h>

#include <set>

#include "util/lex.h"
#include "util/rng.h"
#include "util/timer.h"

namespace nwd {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Lex, CompareBasics) {
  EXPECT_EQ(LexCompare({1, 2}, {1, 2}), 0);
  EXPECT_LT(LexCompare({1, 2}, {1, 3}), 0);
  EXPECT_GT(LexCompare({2, 0}, {1, 9}), 0);
  EXPECT_LT(LexCompare({0, 9, 9}, {1, 0, 0}), 0);
}

TEST(Lex, IncrementEnumeratesAllTuples) {
  Tuple t = LexMin(3);
  int count = 1;
  std::set<Tuple> seen{t};
  while (LexIncrement(&t, 3)) {
    ++count;
    EXPECT_TRUE(seen.insert(t).second) << "duplicate tuple";
  }
  EXPECT_EQ(count, 27);
  EXPECT_EQ(t, (Tuple{2, 2, 2}));
}

TEST(Lex, IncrementCarries) {
  Tuple t{0, 4};
  ASSERT_TRUE(LexIncrement(&t, 5));
  EXPECT_EQ(t, (Tuple{1, 0}));
}

TEST(Lex, IncrementAtMaxFails) {
  Tuple t = LexMax(2, 4);
  EXPECT_FALSE(LexIncrement(&t, 4));
}

TEST(Lex, MinMax) {
  EXPECT_EQ(LexMin(2), (Tuple{0, 0}));
  EXPECT_EQ(LexMax(2, 7), (Tuple{6, 6}));
}

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  Timer timer;
  const int64_t first = timer.ElapsedNanos();
  EXPECT_GE(first, 0);
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedNanos(), first);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace nwd
