#include <gtest/gtest.h>

#include "fo/analysis.h"
#include "fo/ast.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace nwd {
namespace fo {
namespace {

TEST(Ast, ConstantFolding) {
  EXPECT_EQ(Edge(3, 3)->kind, NodeKind::kFalse);
  EXPECT_EQ(Equals(2, 2)->kind, NodeKind::kTrue);
  EXPECT_EQ(DistLeq(1, 1, 5)->kind, NodeKind::kTrue);
  EXPECT_EQ(DistLeq(0, 1, 0)->kind, NodeKind::kEquals);
  EXPECT_EQ(DistLeq(0, 1, -1)->kind, NodeKind::kFalse);
  EXPECT_EQ(Not(True())->kind, NodeKind::kFalse);
  EXPECT_EQ(Not(Not(Edge(0, 1)))->kind, NodeKind::kEdge);
  EXPECT_EQ(And(True(), Edge(0, 1))->kind, NodeKind::kEdge);
  EXPECT_EQ(And(False(), Edge(0, 1))->kind, NodeKind::kFalse);
  EXPECT_EQ(Or(True(), Edge(0, 1))->kind, NodeKind::kTrue);
  EXPECT_EQ(Or(False(), Edge(0, 1))->kind, NodeKind::kEdge);
}

TEST(Ast, EmptyDomainSafeQuantifierFolds) {
  // exists v. true must NOT fold (false on the empty domain)...
  EXPECT_EQ(Exists(0, True())->kind, NodeKind::kExists);
  // ...while exists v. false is safely false everywhere.
  EXPECT_EQ(Exists(0, False())->kind, NodeKind::kFalse);
  EXPECT_EQ(Forall(0, True())->kind, NodeKind::kTrue);
  EXPECT_EQ(Forall(0, False())->kind, NodeKind::kForall);
}

TEST(Analysis, FreeVars) {
  // exists v2 (E(v0, v2)) & C0(v1)
  const FormulaPtr f = And(Exists(2, Edge(0, 2)), Color(0, 1));
  EXPECT_EQ(FreeVars(f), (std::vector<Var>{0, 1}));
  EXPECT_EQ(MaxVarId(f), 2);
}

TEST(Analysis, ShadowedQuantifierKeepsFreeOccurrence) {
  // E(v0, v1) & exists v1 . C0(v1): v1 is free (first conjunct).
  const FormulaPtr f = And(Edge(0, 1), Exists(1, Color(0, 1)));
  EXPECT_EQ(FreeVars(f), (std::vector<Var>{0, 1}));
}

TEST(Analysis, QuantifierRank) {
  EXPECT_EQ(QuantifierRank(Edge(0, 1)), 0);
  EXPECT_EQ(QuantifierRank(Exists(2, Edge(0, 2))), 1);
  EXPECT_EQ(QuantifierRank(And(Exists(2, Forall(3, Edge(2, 3))),
                               Exists(4, Edge(0, 4)))),
            2);
}

TEST(Analysis, MaxDistBound) {
  const FormulaPtr f = Or(DistLeq(0, 1, 3), Not(DistLeq(1, 2, 7)));
  EXPECT_EQ(MaxDistBound(f), 7);
  EXPECT_EQ(MaxDistBound(Edge(0, 1)), 0);
}

TEST(Analysis, LocalityRadius) {
  EXPECT_EQ(LocalityRadius(1, 0), 4);     // (4*1)^1
  EXPECT_EQ(LocalityRadius(2, 1), 512);   // 8^3
  EXPECT_GT(LocalityRadius(5, 40), 0);    // saturates, no overflow
}

TEST(Analysis, QRank) {
  // dist bound 4 at top level with q=1, l=0: limit (4*1)^(1+0) = 4.
  EXPECT_TRUE(HasQRankAtMost(DistLeq(0, 1, 4), 1, 0));
  EXPECT_FALSE(HasQRankAtMost(DistLeq(0, 1, 5), 1, 0));
  // Quantifier rank enforcement.
  EXPECT_FALSE(HasQRankAtMost(Exists(2, Edge(0, 2)), 1, 0));
  EXPECT_TRUE(HasQRankAtMost(Exists(2, Edge(0, 2)), 1, 1));
}

TEST(Analysis, RenameFreeVar) {
  const FormulaPtr f = And(Edge(0, 1), Exists(2, DistLeq(1, 2, 3)));
  const FormulaPtr g = RenameFreeVar(f, 1, 7);
  EXPECT_EQ(FreeVars(g), (std::vector<Var>{0, 7}));
  // Renaming a bound variable's id leaves the formula unchanged.
  const FormulaPtr h = RenameFreeVar(f, 2, 9);
  EXPECT_TRUE(StructurallyEqual(f, h));
}

TEST(Analysis, IsQuantifierFree) {
  EXPECT_TRUE(IsQuantifierFree(And(Edge(0, 1), Not(Color(0, 1)))));
  EXPECT_FALSE(IsQuantifierFree(Not(Exists(2, Edge(0, 2)))));
}

TEST(Parser, ExampleQueriesFromThePaper) {
  // Example 1-A.
  const ParseResult q1 = ParseQuery("(x, y) := dist(x, y) <= 2");
  ASSERT_TRUE(q1.ok) << q1.error;
  EXPECT_EQ(q1.query.arity(), 2);
  EXPECT_EQ(q1.query.formula->kind, NodeKind::kDistLeq);
  EXPECT_EQ(q1.query.formula->dist_bound, 2);

  // Example 2, with a named color.
  const ParseResult q2 =
      ParseQuery("(x, y) := dist(x, y) > 2 & Blue(y)", {{"Blue", 1}});
  ASSERT_TRUE(q2.ok) << q2.error;
  EXPECT_EQ(q2.query.arity(), 2);
  EXPECT_EQ(q2.query.formula->kind, NodeKind::kAnd);
}

TEST(Parser, QuantifiersAndPrecedence) {
  const ParseResult r =
      ParseFormula("exists z. E(x, z) & E(z, y) | E(x, y) | x = y");
  ASSERT_TRUE(r.ok) << r.error;
  // The quantifier binds to the end of the formula.
  EXPECT_EQ(r.query.formula->kind, NodeKind::kExists);
  EXPECT_EQ(r.query.free_vars.size(), 2u);
}

TEST(Parser, ColorByIndex) {
  const ParseResult r = ParseFormula("C3(x) & !C0(x)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.arity(), 1);
}

TEST(Parser, NotEquals) {
  const ParseResult r = ParseFormula("x != y");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.formula->kind, NodeKind::kNot);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseQuery("(x := E(x, x)").ok);
  EXPECT_FALSE(ParseQuery("(x, x) := E(x, x)").ok);  // duplicate header var
  EXPECT_FALSE(ParseQuery("(x) := E(x, y)").ok);  // undeclared free var
  EXPECT_FALSE(ParseFormula("dist(x, y) < 2").ok);
  EXPECT_FALSE(ParseFormula("Unknown(x)").ok);
  EXPECT_FALSE(ParseFormula("E(x, y) &").ok);
  EXPECT_FALSE(ParseFormula("exists . E(x, y)").ok);
  EXPECT_FALSE(ParseFormula("E(x, y) trailing").ok);
  EXPECT_FALSE(ParseSentence("E(x, y)").ok);  // free variables in a sentence
}

TEST(Parser, SentenceOk) {
  const ParseResult r = ParseSentence("exists x, y. E(x, y)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.arity(), 0);
}

TEST(Printer, RoundTrip) {
  const char* inputs[] = {
      "(x, y) := dist(x, y) <= 2",
      "(x, y) := !(dist(x, y) <= 2) & C1(y)",
      "(x) := C0(x) & (exists y. E(x, y) & C1(y))",
      "(x, y, z) := E(x, y) | E(y, z) & x = z",
  };
  for (const char* input : inputs) {
    const ParseResult first = ParseQuery(input);
    ASSERT_TRUE(first.ok) << first.error;
    const std::string printed = fo::ToString(first.query);
    const ParseResult second = ParseQuery(printed);
    ASSERT_TRUE(second.ok) << printed << " -> " << second.error;
    EXPECT_TRUE(StructurallyEqual(first.query.formula, second.query.formula))
        << input << " vs " << printed;
  }
}

TEST(NaiveEval, PathDistancesAndColors) {
  GraphBuilder builder(4, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.SetColor(3, 0);
  const ColoredGraph g = std::move(builder).Build();
  NaiveEvaluator eval(g);

  const Query dist2 = DistanceQuery(2);
  EXPECT_TRUE(eval.TestTuple(dist2, {0, 2}));
  EXPECT_FALSE(eval.TestTuple(dist2, {0, 3}));
  EXPECT_TRUE(eval.TestTuple(dist2, {1, 1}));

  const Query far = FarColorQuery(1, 0);
  EXPECT_TRUE(eval.TestTuple(far, {0, 3}));
  EXPECT_FALSE(eval.TestTuple(far, {2, 3}));  // adjacent
  EXPECT_FALSE(eval.TestTuple(far, {0, 1}));  // not colored
}

TEST(NaiveEval, Quantifiers) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1);
  builder.SetColor(1, 0);
  const ColoredGraph g = std::move(builder).Build();
  NaiveEvaluator eval(g);
  const Query q = HasNeighborOfColorQuery(0, 0);
  // q(x) := C0(x) & exists y (E(x,y) & C0(y)): no vertex qualifies (only
  // vertex 1 is colored and its neighbor 0 is not).
  EXPECT_EQ(eval.AllSolutions(q).size(), 0u);

  const ParseResult sentence = ParseSentence("exists x, y. E(x, y)");
  ASSERT_TRUE(sentence.ok);
  EXPECT_EQ(eval.AllSolutions(sentence.query).size(), 1u);
}

TEST(NaiveEval, AllSolutionsSortedUniqueAndComplete) {
  Rng rng(13);
  const ColoredGraph g = gen::RandomTree(12, 0, {1, 0.4}, &rng);
  NaiveEvaluator eval(g);
  const Query q = FarColorQuery(2, 0);
  const std::vector<Tuple> solutions = eval.AllSolutions(q);
  for (size_t i = 1; i < solutions.size(); ++i) {
    EXPECT_LT(LexCompare(solutions[i - 1], solutions[i]), 0);
  }
  // Cross-check against per-tuple testing.
  Tuple t = LexMin(2);
  size_t count = 0;
  do {
    if (eval.TestTuple(q, t)) ++count;
  } while (LexIncrement(&t, g.NumVertices()));
  EXPECT_EQ(count, solutions.size());
}

// Property: the FO+ distance atom agrees with its pure-FO unfolding
// (Definition 4.1).
class DistUnfoldTest : public ::testing::TestWithParam<int> {};

TEST_P(DistUnfoldTest, AtomMatchesUnfolding) {
  Rng rng(100 + GetParam());
  const ColoredGraph g = gen::ErdosRenyi(14, 2.0, {0, 0.0}, &rng);
  NaiveEvaluator eval(g);
  for (int64_t r = 0; r <= 3; ++r) {
    Query atom;
    atom.formula = DistLeq(0, 1, r);
    atom.free_vars = {0, 1};
    Query unfolded;
    unfolded.formula = UnfoldedDistLeq(0, 1, r, 2);
    unfolded.free_vars = {0, 1};
    for (Vertex a = 0; a < g.NumVertices(); ++a) {
      for (Vertex b = 0; b < g.NumVertices(); ++b) {
        EXPECT_EQ(eval.TestTuple(atom, {a, b}),
                  eval.TestTuple(unfolded, {a, b}))
            << "r=" << r << " a=" << a << " b=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistUnfoldTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace fo
}  // namespace nwd
