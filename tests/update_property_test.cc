// Property tests for the dynamic-update plane: a stream of random edits
// (edge insertions, edge deletions, color flips) with mid-stream probes
// must be bit-identical to a from-scratch engine rebuild after every
// edit. Covers tree / bounded-degree / grid inputs, thread counts 1-8,
// budget-tripped (degraded) engines where Repair must decline, and the
// asynchronous repair lane where probes issued while the engine lags are
// answered through the degraded lazy path. TSan / ASan twins run the
// same streams under the sanitizers.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "dynamic/dynamic_engine.h"
#include "enumerate/engine.h"
#include "fo/parser.h"
#include "graph/colored_graph.h"
#include "property_common.h"
#include "util/lex.h"
#include "util/rng.h"

namespace nwd {
namespace {

using testing_common::RandomGraph;
using testing_common::RandomQuery;

// Full enumeration by repeated Next() from the lexicographic minimum.
// Works for both EnumerationEngine and DynamicEngine.
template <typename Engine>
std::vector<Tuple> AllAnswers(const Engine& engine, int64_t n) {
  std::vector<Tuple> out;
  if (n == 0) return out;
  Tuple cursor = LexMin(engine.arity());
  while (true) {
    const std::optional<Tuple> next = engine.Next(cursor);
    if (!next.has_value()) break;
    out.push_back(*next);
    cursor = *next;
    if (!LexIncrement(&cursor, n)) break;
  }
  return out;
}

Tuple RandomTuple(int arity, int64_t n, Rng* rng) {
  Tuple t(arity);
  for (int i = 0; i < arity; ++i) {
    t[i] = static_cast<int64_t>(rng->NextBounded(static_cast<uint64_t>(n)));
  }
  return t;
}

// One random edit against the current graph: a color flip, an edge toggle
// on a random pair, or the deletion of an existing edge (so deletions hit
// real edges often instead of almost always being no-ops).
GraphEdit RandomEdit(const ColoredGraph& g, Rng* rng) {
  const int64_t n = g.NumVertices();
  const int roll = static_cast<int>(rng->NextBounded(4));
  if (roll == 0 || n < 2) {
    const Vertex v = static_cast<Vertex>(rng->NextBounded(n));
    const int c = static_cast<int>(rng->NextBounded(g.NumColors()));
    return GraphEdit::SetColor(v, c, !g.HasColor(v, c));
  }
  if (roll == 1) {
    // Delete an existing edge if the sampled vertex has one.
    const Vertex u = static_cast<Vertex>(rng->NextBounded(n));
    if (g.Degree(u) > 0) {
      const auto nbrs = g.Neighbors(u);
      const Vertex v = nbrs[rng->NextBounded(nbrs.size())];
      return GraphEdit::RemoveEdge(u, v);
    }
  }
  // Toggle a random pair: add if absent, remove if present.
  Vertex u = static_cast<Vertex>(rng->NextBounded(n));
  Vertex v = static_cast<Vertex>(rng->NextBounded(n));
  if (u == v) v = (v + 1) % n;
  return g.HasEdge(u, v) ? GraphEdit::RemoveEdge(u, v)
                         : GraphEdit::AddEdge(u, v);
}

// Drives one edit stream: a synchronous DynamicEngine consumes random
// edits one at a time; after every edit its full enumeration and a batch
// of random membership probes must be bit-identical to an engine built
// from scratch over an identically mutated reference graph. The
// reference engine always runs with default (unlimited) options, so this
// also checks degraded dynamic configurations against ground truth.
void RunEditStream(int kind, int arity, uint64_t seed,
                   const EngineOptions& engine_options, int num_edits,
                   int graph_size) {
  Rng rng(seed);
  ColoredGraph reference = RandomGraph(kind, graph_size, &rng);
  const fo::Query query = RandomQuery(arity, reference.NumColors(), &rng);
  const int64_t n = reference.NumVertices();

  DynamicEngine::Options options;
  options.engine = engine_options;
  options.synchronous = true;
  DynamicEngine dynamic(reference, query, options);

  for (int step = 0; step < num_edits; ++step) {
    const GraphEdit edit = RandomEdit(reference, &rng);
    const bool changed = reference.ApplyInPlace(edit);
    const int64_t applied = dynamic.Apply(std::span<const GraphEdit>(&edit, 1));
    ASSERT_EQ(changed ? 1 : 0, applied)
        << "kind=" << kind << " seed=" << seed << " step=" << step;
    ASSERT_TRUE(dynamic.in_sync());

    EnumerationEngine fresh(reference, query);
    const std::vector<Tuple> expected = AllAnswers(fresh, n);
    const std::vector<Tuple> actual = AllAnswers(dynamic, n);
    ASSERT_EQ(expected, actual)
        << "enumeration diverged from from-scratch rebuild: kind=" << kind
        << " arity=" << arity << " seed=" << seed << " step=" << step;
    for (int probe = 0; probe < 24; ++probe) {
      const Tuple t = RandomTuple(arity, n, &rng);
      ASSERT_EQ(fresh.Test(t), dynamic.Test(t))
          << "Test diverged: kind=" << kind << " seed=" << seed
          << " step=" << step;
    }
  }

  const DynamicEngine::UpdateStats stats = dynamic.stats();
  EXPECT_TRUE(stats.in_sync);
  EXPECT_GT(stats.batches, 0);
  EXPECT_EQ(stats.batches, stats.repairs + stats.full_rebuilds);
}

TEST(UpdatePropertyTest, TreeEditStreamMatchesRebuild) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunEditStream(/*kind=*/0, /*arity=*/2, seed, EngineOptions(),
                  /*num_edits=*/10, /*graph_size=*/70);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(UpdatePropertyTest, BoundedDegreeEditStreamMatchesRebuild) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    RunEditStream(/*kind=*/1, /*arity=*/2, seed, EngineOptions(),
                  /*num_edits=*/10, /*graph_size=*/70);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(UpdatePropertyTest, GridEditStreamMatchesRebuild) {
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    RunEditStream(/*kind=*/2, /*arity=*/2, seed, EngineOptions(),
                  /*num_edits=*/10, /*graph_size=*/64);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(UpdatePropertyTest, UnaryQueriesAcrossKinds) {
  for (int kind = 0; kind < 3; ++kind) {
    RunEditStream(kind, /*arity=*/1, /*seed=*/31 + kind, EngineOptions(),
                  /*num_edits=*/10, /*graph_size=*/80);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(UpdatePropertyTest, ThreadCountsAreBitIdentical) {
  for (const int threads : {2, 8}) {
    EngineOptions options;
    options.num_threads = threads;
    RunEditStream(/*kind=*/0, /*arity=*/2, /*seed=*/41, options,
                  /*num_edits=*/8, /*graph_size=*/70);
    if (::testing::Test::HasFatalFailure()) return;
    RunEditStream(/*kind=*/1, /*arity=*/2, /*seed=*/43, options,
                  /*num_edits=*/8, /*graph_size=*/70);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A budget-tripped engine degrades to the lazy baseline; Repair must
// decline on it and the full-rebuild path must carry every edit. The
// reference engine runs unlimited, so degraded answers are checked
// against ground truth, not against another degraded engine.
TEST(UpdatePropertyTest, BudgetTrippedEngineStaysCorrect) {
  EngineOptions tripped;
  tripped.budget.max_edge_work = 1;
  RunEditStream(/*kind=*/0, /*arity=*/2, /*seed=*/51, tripped,
                /*num_edits=*/8, /*graph_size=*/60);
  if (::testing::Test::HasFatalFailure()) return;
  RunEditStream(/*kind=*/2, /*arity=*/1, /*seed=*/53, tripped,
                /*num_edits=*/8, /*graph_size=*/60);
}

// Interpreter path (compiled queries off) must repair identically.
TEST(UpdatePropertyTest, InterpreterPathMatchesRebuild) {
  EngineOptions interp;
  interp.use_compiled_queries = false;
  RunEditStream(/*kind=*/1, /*arity=*/2, /*seed=*/61, interp,
                /*num_edits=*/8, /*graph_size=*/70);
}

// No-op edits (re-adding a present edge, re-asserting a color) must not
// reach the repair lane or flip the engine out of sync.
TEST(UpdatePropertyTest, NoopEditsAreDropped) {
  Rng rng(71);
  ColoredGraph graph = RandomGraph(/*kind=*/0, 50, &rng);
  const fo::Query query = RandomQuery(2, graph.NumColors(), &rng);
  ASSERT_GT(graph.NumEdges(), 0);
  const Vertex u = 0;
  ASSERT_GT(graph.Degree(u), 0);
  const Vertex v = graph.Neighbors(u)[0];

  DynamicEngine::Options options;
  options.synchronous = true;
  DynamicEngine dynamic(graph, query, options);
  const std::vector<GraphEdit> noops = {
      GraphEdit::AddEdge(u, v),  // already present
      GraphEdit::SetColor(3, 0, graph.HasColor(3, 0)),  // already set so
      GraphEdit::RemoveEdge(1, 1),  // self-loop, never present
  };
  EXPECT_EQ(0, dynamic.Apply(noops));
  const DynamicEngine::UpdateStats stats = dynamic.stats();
  EXPECT_TRUE(stats.in_sync);
  EXPECT_EQ(0, stats.batches);
  EXPECT_EQ(3, stats.edits_noop);
}

// The localized repair path must actually engage, not decline into a
// full rebuild. Random small graphs always decline (the 2R damage region
// swallows more than a quarter of the universe), so this pins a setting
// where repair provably stays local: a radius-1 query over a
// long-diameter grid, with every edit confined to one corner so the
// successive damage regions overlap and the oracle dirty set stays under
// the decline threshold. Answers must still be bit-identical to a
// from-scratch engine after every edit.
TEST(UpdatePropertyTest, EdgeRepairEngagesOnLargeGrid) {
  fo::ParseResult parsed = fo::ParseFormula("E(x, y) & C0(x)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Rng rng(91);
  // kind 2 with n=640 builds an 80x8 grid: diameter ~86.
  ColoredGraph reference = RandomGraph(/*kind=*/2, 640, &rng);
  const int64_t n = reference.NumVertices();
  ASSERT_GE(n, 500);

  DynamicEngine::Options options;
  options.synchronous = true;
  DynamicEngine dynamic(reference, parsed.query, options);

  for (int step = 0; step < 8; ++step) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(40));
    Vertex v = static_cast<Vertex>(rng.NextBounded(40));
    if (u == v) v = (v + 1) % 40;
    const GraphEdit edit = reference.HasEdge(u, v)
                               ? GraphEdit::RemoveEdge(u, v)
                               : GraphEdit::AddEdge(u, v);
    reference.ApplyInPlace(edit);
    dynamic.Apply(std::span<const GraphEdit>(&edit, 1));

    EnumerationEngine fresh(reference, parsed.query);
    ASSERT_EQ(AllAnswers(fresh, n), AllAnswers(dynamic, n))
        << "repair diverged from rebuild at step " << step;
    for (int probe = 0; probe < 16; ++probe) {
      const Tuple t = RandomTuple(2, n, &rng);
      ASSERT_EQ(fresh.Test(t), dynamic.Test(t)) << "step=" << step;
    }
  }

  const DynamicEngine::UpdateStats stats = dynamic.stats();
  EXPECT_GT(stats.repairs, 0)
      << "every edge batch declined into a full rebuild; the localized "
         "repair path was never exercised";
}

// Color-only batches never touch the cover or the oracle, so repair must
// always succeed in place — a full rebuild on a color flip would defeat
// the point of the update plane.
TEST(UpdatePropertyTest, ColorOnlyStreamAlwaysRepairsInPlace) {
  fo::ParseResult parsed = fo::ParseFormula("E(x, y) & C1(y) & !C0(x)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  for (int kind = 0; kind < 3; ++kind) {
    Rng rng(static_cast<uint64_t>(95 + kind));
    ColoredGraph reference = RandomGraph(kind, 70, &rng);
    const int64_t n = reference.NumVertices();

    DynamicEngine::Options options;
    options.synchronous = true;
    DynamicEngine dynamic(reference, parsed.query, options);

    for (int step = 0; step < 10; ++step) {
      const Vertex v = static_cast<Vertex>(rng.NextBounded(n));
      const int c = static_cast<int>(rng.NextBounded(reference.NumColors()));
      const GraphEdit edit =
          GraphEdit::SetColor(v, c, !reference.HasColor(v, c));
      reference.ApplyInPlace(edit);
      dynamic.Apply(std::span<const GraphEdit>(&edit, 1));

      EnumerationEngine fresh(reference, parsed.query);
      ASSERT_EQ(AllAnswers(fresh, n), AllAnswers(dynamic, n))
          << "kind=" << kind << " step=" << step;
    }

    const DynamicEngine::UpdateStats stats = dynamic.stats();
    EXPECT_EQ(stats.batches, stats.repairs) << "kind=" << kind;
    EXPECT_EQ(0, stats.full_rebuilds)
        << "a color flip forced a full rebuild (kind=" << kind << ")";
  }
}

// Asynchronous mode: apply a batch, then probe immediately — probes that
// land while the repair lane is busy go through the degraded lazy path
// and must still agree with a from-scratch engine over the final graph
// (the serving graph is already final when Apply returns). After
// WaitForSync the full enumeration must match too.
TEST(UpdatePropertyTest, AsyncProbesDuringRepairAreCorrect) {
  for (uint64_t seed = 81; seed <= 83; ++seed) {
    Rng rng(seed);
    ColoredGraph reference = RandomGraph(/*kind=*/static_cast<int>(seed % 3),
                                         80, &rng);
    const fo::Query query = RandomQuery(2, reference.NumColors(), &rng);
    const int64_t n = reference.NumVertices();

    DynamicEngine dynamic(reference, query);  // asynchronous by default
    std::vector<GraphEdit> batch;
    for (int i = 0; i < 12; ++i) {
      const GraphEdit edit = RandomEdit(reference, &rng);
      reference.ApplyInPlace(edit);
      batch.push_back(edit);
      // Re-derive edits against the mutated reference so the batch stays
      // coherent (e.g. no double-remove of the same edge).
    }
    dynamic.Apply(batch);

    EnumerationEngine fresh(reference, query);
    // Probe right away: some of these race the repair lane and are
    // answered lazily; all must agree with ground truth.
    for (int probe = 0; probe < 40; ++probe) {
      const Tuple t = RandomTuple(2, n, &rng);
      ASSERT_EQ(fresh.Test(t), dynamic.Test(t)) << "seed=" << seed;
      const std::optional<Tuple> expected = fresh.Next(t);
      ASSERT_EQ(expected, dynamic.Next(t)) << "seed=" << seed;
    }
    dynamic.WaitForSync();
    EXPECT_TRUE(dynamic.in_sync());
    EXPECT_EQ(AllAnswers(fresh, n), AllAnswers(dynamic, n))
        << "seed=" << seed;

    const DynamicEngine::UpdateStats stats = dynamic.stats();
    EXPECT_GT(stats.edits_applied, 0);
    EXPECT_GT(stats.batches, 0);
  }
}

}  // namespace
}  // namespace nwd
