// Shared randomized-sweep helpers for the end-to-end property tests:
// random quantifier-free FO+ queries and random graphs from every
// generator class. Used by property_test.cc (engine vs naive semantics)
// and parallel_engine_test.cc (parallel vs serial preprocessing).

#ifndef NWD_TESTS_PROPERTY_COMMON_H_
#define NWD_TESTS_PROPERTY_COMMON_H_

#include <algorithm>

#include "fo/ast.h"
#include "fo/builders.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace testing_common {

// A random quantifier-free FO+ formula over `arity` free variables.
inline fo::FormulaPtr RandomFormula(int arity, int num_colors, int depth,
                                    Rng* rng) {
  if (depth == 0 || rng->NextBool(0.35)) {
    // Random atom.
    const int kind = static_cast<int>(rng->NextBounded(4));
    const fo::Var x = static_cast<fo::Var>(rng->NextBounded(arity));
    fo::Var y = static_cast<fo::Var>(rng->NextBounded(arity));
    switch (kind) {
      case 0:
        return fo::Color(static_cast<int>(rng->NextBounded(num_colors)), x);
      case 1:
        return x == y ? fo::Color(0, x) : fo::Edge(x, y);
      case 2:
        return fo::Equals(x, y);
      default:
        return fo::DistLeq(x, y,
                           1 + static_cast<int64_t>(rng->NextBounded(3)));
    }
  }
  const int op = static_cast<int>(rng->NextBounded(3));
  if (op == 0) return fo::Not(RandomFormula(arity, num_colors, depth - 1, rng));
  fo::FormulaPtr a = RandomFormula(arity, num_colors, depth - 1, rng);
  fo::FormulaPtr b = RandomFormula(arity, num_colors, depth - 1, rng);
  return op == 1 ? fo::And(a, b) : fo::Or(a, b);
}

inline fo::Query RandomQuery(int arity, int num_colors, Rng* rng) {
  fo::Query q;
  q.formula = RandomFormula(arity, num_colors, 3, rng);
  for (int i = 0; i < arity; ++i) q.free_vars.push_back(i);
  q.var_names = {"x", "y", "z", "w"};
  q.var_names.resize(static_cast<size_t>(arity));
  return q;
}

inline ColoredGraph RandomGraph(int kind, int64_t n, Rng* rng) {
  switch (kind % 5) {
    case 0:
      return gen::RandomTree(n, 0, {2, 0.35}, rng);
    case 1:
      return gen::BoundedDegreeGraph(n, 4, 2.2, {2, 0.35}, rng);
    case 2:
      return gen::Grid(std::max<int64_t>(2, n / 8), 8, {2, 0.35}, rng);
    case 3:
      return gen::RandomForest(n, 4, {2, 0.35}, rng);
    default:
      return gen::SubdividedClique(6, std::max<int64_t>(1, n / 15),
                                   {2, 0.35}, rng);
  }
}

}  // namespace testing_common
}  // namespace nwd

#endif  // NWD_TESTS_PROPERTY_COMMON_H_
