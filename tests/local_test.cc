#include <gtest/gtest.h>

#include "cover/neighborhood_cover.h"
#include "fo/ast.h"
#include "fo/builders.h"
#include "fo/naive_eval.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/builder.h"
#include "local/distance_oracle.h"
#include "local/edgeless_eval.h"
#include "local/local_evaluator.h"
#include "splitter/strategy.h"
#include "util/rng.h"

namespace nwd {
namespace {

// ---- EdgelessEvaluator: the lambda = 1 base case ----

class EdgelessTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgelessTest, AgreesWithNaiveOnRandomFormulas) {
  Rng rng(GetParam());
  GraphBuilder builder(20, 2);
  for (Vertex v = 0; v < 20; ++v) {
    for (int c = 0; c < 2; ++c) {
      if (rng.NextBool(0.4)) builder.SetColor(v, c);
    }
  }
  const ColoredGraph g = std::move(builder).Build();
  fo::NaiveEvaluator naive(g);
  EdgelessEvaluator fast(g);

  using namespace fo;  // NOLINT
  const std::vector<FormulaPtr> formulas = {
      Exists(2, And(Color(0, 2), Color(1, 2))),
      Forall(2, Or(Color(0, 2), Color(1, 2))),
      Exists(2, And(Not(Equals(0, 2)), Color(0, 2))),
      Exists(2, Exists(3, And(Not(Equals(2, 3)),
                              And(Color(0, 2), Color(0, 3))))),
      // Three pairwise-distinct C0 vertices.
      Exists(2,
             Exists(3,
                    Exists(4, AndAll({Not(Equals(2, 3)), Not(Equals(2, 4)),
                                      Not(Equals(3, 4)), Color(0, 2),
                                      Color(0, 3), Color(0, 4)})))),
      Exists(2, Edge(0, 2)),            // always false on edgeless graphs
      Exists(2, DistLeq(0, 2, 3)),      // only x itself
      Forall(2, Not(Edge(0, 2))),
  };
  for (size_t fi = 0; fi < formulas.size(); ++fi) {
    for (Vertex a = 0; a < g.NumVertices(); ++a) {
      std::vector<Vertex> env_a(8, kUnbound);
      env_a[0] = a;
      std::vector<Vertex> env_b = env_a;
      EXPECT_EQ(naive.Evaluate(formulas[fi], &env_a),
                fast.Evaluate(formulas[fi], &env_b))
          << "formula " << fi << " a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgelessTest, ::testing::Range(0, 6));

TEST(Edgeless, CountingDistinguishesMultiplicities) {
  // One blue vertex vs two: "exists two distinct blues" must differ.
  GraphBuilder one(3, 1);
  one.SetColor(0, 0);
  GraphBuilder two(3, 1);
  two.SetColor(0, 0);
  two.SetColor(1, 0);
  const ColoredGraph g1 = std::move(one).Build();
  const ColoredGraph g2 = std::move(two).Build();
  using namespace fo;  // NOLINT
  const FormulaPtr phi = Exists(
      0, Exists(1, AndAll({Not(Equals(0, 1)), Color(0, 0), Color(0, 1)})));
  std::vector<Vertex> env(2, kUnbound);
  EXPECT_FALSE(EdgelessEvaluator(g1).Evaluate(phi, &env));
  env.assign(2, kUnbound);
  EXPECT_TRUE(EdgelessEvaluator(g2).Evaluate(phi, &env));
}

// ---- DistanceOracle: Proposition 4.2 ----

struct OracleParams {
  int graph_kind;  // 0 tree, 1 bounded-degree, 2 grid, 3 star forest
  int radius;
  uint64_t seed;
};

ColoredGraph MakeGraph(int kind, Rng* rng) {
  switch (kind) {
    case 0:
      return gen::RandomTree(250, 0, {1, 0.3}, rng);
    case 1:
      return gen::BoundedDegreeGraph(250, 4, 2.0, {1, 0.3}, rng);
    case 2:
      return gen::Grid(14, 18, {1, 0.3}, rng);
    default:
      return gen::StarForest(25, 9, {1, 0.3}, rng);
  }
}

class OracleTest : public ::testing::TestWithParam<OracleParams> {};

TEST_P(OracleTest, MatchesBfsForAllQueryRadii) {
  const OracleParams params = GetParam();
  Rng rng(params.seed);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  const auto strategy = MakeAutoStrategy(g);
  // Force the recursion to actually exercise the cover/splitter machinery
  // by keeping the small-case cutoff tiny.
  DistanceOracle::Options options;
  options.small_cutoff = 8;
  const DistanceOracle oracle(g, params.radius, *strategy, options);

  BfsScratch scratch(g.NumVertices());
  for (int trial = 0; trial < 150; ++trial) {
    const Vertex a =
        static_cast<Vertex>(rng.NextBounded(
            static_cast<uint64_t>(g.NumVertices())));
    const Vertex b =
        static_cast<Vertex>(rng.NextBounded(
            static_cast<uint64_t>(g.NumVertices())));
    scratch.Neighborhood(g, a, params.radius);
    const int64_t dist = scratch.DistanceTo(b);
    for (int r = 0; r <= params.radius; ++r) {
      EXPECT_EQ(oracle.WithinDistance(a, b, r), dist >= 0 && dist <= r)
          << "a=" << a << " b=" << b << " r=" << r;
    }
  }
}

TEST_P(OracleTest, NearPairsAreExhaustivelyCorrect) {
  const OracleParams params = GetParam();
  Rng rng(params.seed + 1000);
  const ColoredGraph g = MakeGraph(params.graph_kind, &rng);
  const auto strategy = MakeAutoStrategy(g);
  DistanceOracle::Options options;
  options.small_cutoff = 8;
  const DistanceOracle oracle(g, params.radius, *strategy, options);

  // Dense check: for sampled a, compare against the whole ball (near
  // pairs are the hard, recursive case).
  BfsScratch scratch(g.NumVertices());
  for (int trial = 0; trial < 25; ++trial) {
    const Vertex a = static_cast<Vertex>(
        rng.NextBounded(static_cast<uint64_t>(g.NumVertices())));
    const auto ball = scratch.Neighborhood(g, a, params.radius);
    for (Vertex b : ball) {
      const int64_t dist = scratch.DistanceTo(b);
      EXPECT_TRUE(oracle.WithinDistance(a, b, static_cast<int>(dist)));
      if (dist > 0) {
        EXPECT_FALSE(
            oracle.WithinDistance(a, b, static_cast<int>(dist) - 1))
            << "a=" << a << " b=" << b << " dist=" << dist;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleTest,
    ::testing::Values(OracleParams{0, 2, 1}, OracleParams{0, 4, 2},
                      OracleParams{1, 2, 3}, OracleParams{1, 3, 4},
                      OracleParams{2, 3, 5}, OracleParams{3, 2, 6}));

TEST(Oracle, RecursionActuallyDeepens) {
  Rng rng(77);
  const ColoredGraph g = gen::Grid(20, 20, {0, 0.0}, &rng);
  const auto strategy = MakeAutoStrategy(g);
  DistanceOracle::Options options;
  options.small_cutoff = 4;
  const DistanceOracle oracle(g, 2, *strategy, options);
  EXPECT_GT(oracle.stats().max_depth, 0);
  EXPECT_GT(oracle.stats().total_bags, 0);
}

TEST(Oracle, SymmetricAnswers) {
  Rng rng(78);
  const ColoredGraph g = gen::RandomTree(200, 0, {0, 0.0}, &rng);
  const auto strategy = MakeAutoStrategy(g);
  const DistanceOracle oracle(g, 3, *strategy);
  for (int trial = 0; trial < 200; ++trial) {
    const Vertex a = static_cast<Vertex>(rng.NextBounded(200));
    const Vertex b = static_cast<Vertex>(rng.NextBounded(200));
    for (int r = 0; r <= 3; ++r) {
      EXPECT_EQ(oracle.WithinDistance(a, b, r),
                oracle.WithinDistance(b, a, r));
    }
  }
}

// ---- LocalEvaluator ----

TEST(LocalEvaluator, BagRestrictedEvaluation) {
  Rng rng(21);
  const ColoredGraph g = gen::RandomTree(100, 0, {2, 0.4}, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  LocalEvaluator local(g, cover);

  // Unary, 1-local query: "x has a C0 neighbor".
  const fo::Query q = fo::HasNeighborOfColorQuery(1, 0);
  fo::Query relaxed = q;  // same query without the C1(x) guard
  relaxed.formula = fo::Exists(1, fo::And(fo::Edge(0, 1), fo::Color(0, 1)));

  const std::vector<bool> materialized = local.MaterializeUnary(relaxed);
  fo::NaiveEvaluator naive(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(materialized[v], naive.TestTuple(relaxed, {v})) << "v=" << v;
  }
}

TEST(LocalEvaluator, TestInBagMatchesInducedEvaluation) {
  Rng rng(22);
  const ColoredGraph g = gen::Grid(8, 8, {1, 0.5}, &rng);
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  LocalEvaluator local(g, cover);
  const fo::FormulaPtr phi =
      fo::Exists(1, fo::And(fo::Edge(0, 1), fo::Color(0, 1)));
  for (Vertex v = 0; v < g.NumVertices(); v += 5) {
    const int64_t bag = cover.AssignedBag(v);
    const SubgraphView induced = InduceSubgraph(g, cover.Bag(bag));
    fo::NaiveEvaluator naive(induced.graph);
    std::vector<Vertex> env(2, fo::kUnbound);
    env[0] = induced.ToLocal(v);
    EXPECT_EQ(local.TestInBag(bag, phi, {0}, {v}),
              naive.Evaluate(phi, &env));
  }
}

}  // namespace
}  // namespace nwd
