#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gen/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace nwd {
namespace {

TEST(GraphIo, ParseBasic) {
  const GraphParseResult result = ReadGraphFromString(R"(
# a comment
graph 4 2
e 0 1
e 1 2
c 3 0
c 3 1
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.graph.NumVertices(), 4);
  EXPECT_EQ(result.graph.NumEdges(), 2);
  EXPECT_TRUE(result.graph.HasEdge(0, 1));
  EXPECT_TRUE(result.graph.HasColor(3, 0));
  EXPECT_TRUE(result.graph.HasColor(3, 1));
  EXPECT_FALSE(result.graph.HasColor(0, 0));
}

TEST(GraphIo, InlineCommentsAndDuplicates) {
  const GraphParseResult result = ReadGraphFromString(
      "graph 3 1 # header\n"
      "e 0 1 # an edge\n"
      "e 1 0\n"
      "c 2 0\n"
      "c 2 0\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.graph.NumEdges(), 1);
  EXPECT_EQ(result.graph.ColorMembers(0).size(), 1u);
}

TEST(GraphIo, Errors) {
  EXPECT_FALSE(ReadGraphFromString("").ok);
  EXPECT_FALSE(ReadGraphFromString("e 0 1\n").ok);  // data before header
  EXPECT_FALSE(ReadGraphFromString("graph 2 0\ngraph 2 0\n").ok);
  EXPECT_FALSE(ReadGraphFromString("graph 2 0\ne 0 5\n").ok);
  EXPECT_FALSE(ReadGraphFromString("graph 2 1\nc 0 3\n").ok);
  EXPECT_FALSE(ReadGraphFromString("graph 2 0\nx 1 2\n").ok);
  EXPECT_FALSE(ReadGraphFromString("graph -1 0\n").ok);
  EXPECT_FALSE(ReadGraphFromString("graph 2 0\ne 0\n").ok);
  EXPECT_FALSE(ReadGraphFromFile("/nonexistent/path.g").ok);
}

// Malformed inputs must come back as GraphParseResult errors — never as
// aborts inside the builder's NWD_CHECKs and never as silently accepted
// garbage. Each row is (input, substring the error must contain).
TEST(GraphIo, MalformedInputTable) {
  struct Row {
    const char* input;
    const char* error_substring;
  };
  const Row rows[] = {
      // Header abuse.
      {"graph 99999999999999999999 2\n", "expected 'graph"},  // overflows
      {"graph 9999999999 2\n", "exceeds the loader limit"},   // huge n
      {"graph 10 99999999\n", "exceeds the loader limit"},    // huge colors
      {"graph 100000000 1000000\n", "exceeds the loader limit"},  // n*c
      {"graph 3\n", "expected 'graph"},                    // truncated
      {"graph 3 1 7\n", "expected 'graph"},                // trailing junk
      {"graph three 1\n", "expected 'graph"},              // non-numeric
      {"graph -3 1\n", "expected 'graph"},                 // negative
      {"graph 3 -1\n", "expected 'graph"},                 // negative colors
      // Record abuse (after a valid header).
      {"graph 3 1\ne 0\n", "expected 'e"},                 // truncated edge
      {"graph 3 1\ne 0 1 2\n", "expected 'e"},             // trailing junk
      {"graph 3 1\ne 0 x\n", "expected 'e"},               // non-numeric
      {"graph 3 1\ne -1 0\n", "out of range"},             // negative id
      {"graph 3 1\ne 0 99999999999999999999\n", "expected 'e"},  // overflow
      {"graph 3 1\nc 0\n", "expected 'c"},                 // truncated color
      {"graph 3 1\nc 0 0 junk\n", "expected 'c"},          // trailing junk
      {"graph 3 1\nc -1 0\n", "out of range"},             // negative id
      {"graph 3 1\nc 0 -2\n", "out of range"},             // negative color
      {"graph 3 1\nc 0 1\n", "out of range"},              // color too big
      {"graph 3 1\nv 0\n", "unknown record"},              // unknown tag
  };
  for (const Row& row : rows) {
    const GraphParseResult result = ReadGraphFromString(row.input);
    EXPECT_FALSE(result.ok) << "accepted: " << row.input;
    EXPECT_NE(result.error.find(row.error_substring), std::string::npos)
        << "input: " << row.input << "\nerror: " << result.error;
  }
}

// The caps are tunable: tighter limits reject a file the defaults accept,
// and the boundary value still loads.
TEST(GraphIo, ParseLimitsAreTunable) {
  GraphParseLimits tight;
  tight.max_vertices = 10;
  const GraphParseResult rejected =
      ReadGraphFromString("graph 100 1\n", tight);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("exceeds the loader limit"),
            std::string::npos);
  EXPECT_TRUE(ReadGraphFromString("graph 10 1\n", tight).ok);
  EXPECT_TRUE(ReadGraphFromString("graph 100 1\n").ok);  // defaults accept
}

TEST(GraphIo, RoundTripRandomGraph) {
  Rng rng(42);
  const ColoredGraph original =
      gen::BoundedDegreeGraph(200, 5, 3.0, {3, 0.3}, &rng);
  std::ostringstream out;
  ASSERT_TRUE(WriteGraph(original, out));
  const GraphParseResult parsed = ReadGraphFromString(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ColoredGraph& copy = parsed.graph;
  ASSERT_EQ(copy.NumVertices(), original.NumVertices());
  ASSERT_EQ(copy.NumEdges(), original.NumEdges());
  ASSERT_EQ(copy.NumColors(), original.NumColors());
  for (Vertex v = 0; v < original.NumVertices(); ++v) {
    ASSERT_EQ(copy.Degree(v), original.Degree(v));
    for (int c = 0; c < original.NumColors(); ++c) {
      ASSERT_EQ(copy.HasColor(v, c), original.HasColor(v, c));
    }
  }
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(7);
  const ColoredGraph original = gen::RandomTree(50, 0, {1, 0.5}, &rng);
  const std::string path = ::testing::TempDir() + "/nwd_io_test.g";
  ASSERT_TRUE(WriteGraphToFile(original, path));
  const GraphParseResult parsed = ReadGraphFromFile(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.graph.NumEdges(), original.NumEdges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nwd
