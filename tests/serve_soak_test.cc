// Randomized soak of the serving daemon, the acceptance harness for the
// robustness contract:
//
//   * zero hangs / crashes: every request reaches a final frame (ctest
//     TIMEOUT is the outer net; ReadResponse never spins);
//   * streams are single-epoch or typed-error-terminated: each recorded
//     stream/probe is replayed against a serially rebuilt engine for its
//     epoch (the gen:<class>:<n>:<seed> specs are bit-reproducible) and
//     must match exactly (completed) or be an exact prefix (aborted);
//   * the daemon's own accounting closes: once quiescent,
//     requests + bad_frames == responses_ok + responses_err +
//     dropped_conns + worker_deaths.
//
// Two soaks run: a clean one with behavior-preserving answer-path faults
// (answer/*) armed probabilistically — answers must stay bit-identical —
// and a hostile one with every serving-layer fault (serve/*) firing at
// random, plus garbage frames and mid-stream client deaths from the
// chaos clients themselves.
//
// NWD_SOAK_MS scales the per-soak duration (default 1500 ms, CI-sized;
// the EXPERIMENTS.md acceptance run uses 30000 per soak).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "enumerate/engine.h"
#include "fo/parser.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/wire.h"
#include "util/fault_injection.h"
#include "util/lex.h"
#include "util/rng.h"

namespace nwd {
namespace serve {
namespace {

// --- Fault-injection plumbing the soak relies on -----------------------
// These run first in this binary: the env test must execute before any
// other code in the process trips a fault point (the environment is read
// once, on first use).

TEST(FaultEnvTest, EnvironmentArmsPointsForWholeProcessSoaks) {
  ::setenv("NWD_FAULT_POINT", "soak/env/point", 1);
  ::setenv("NWD_FAULT_PROB", "1.0", 1);  // >= 1 means every hit
  EXPECT_TRUE(fault_injection::ShouldFail("soak/env/point"));
  EXPECT_TRUE(fault_injection::ShouldFail("soak/env/point"));
  EXPECT_FALSE(fault_injection::ShouldFail("soak/env/other"));
  EXPECT_GE(fault_injection::FireCount(), 2);
  fault_injection::Disarm();  // also clears the env arming
  EXPECT_FALSE(fault_injection::ShouldFail("soak/env/point"));
  ::unsetenv("NWD_FAULT_POINT");
  ::unsetenv("NWD_FAULT_PROB");
}

TEST(FaultEnvTest, PrefixArmingMatchesWholeNamespaces) {
  fault_injection::Arm("serve/*", fault_injection::Mode::kEveryHit);
  EXPECT_TRUE(fault_injection::ShouldFail("serve/stream/abort"));
  EXPECT_TRUE(fault_injection::ShouldFail("serve/anything"));
  EXPECT_FALSE(fault_injection::ShouldFail("answer/pool_miss"));
  fault_injection::Disarm();
  EXPECT_FALSE(fault_injection::ShouldFail("serve/stream/abort"));
}

TEST(FaultEnvTest, ProbabilisticModeFiresAtRoughlyTheArmedRate) {
  fault_injection::Arm("soak/coin", fault_injection::Mode::kProbabilistic,
                       0.5);
  int fired = 0;
  for (int i = 0; i < 400; ++i) {
    if (fault_injection::ShouldFail("soak/coin")) ++fired;
  }
  fault_injection::Disarm();
  // 400 fair-ish coin flips: far from 0 and far from 400.
  EXPECT_GT(fired, 100);
  EXPECT_LT(fired, 300);
}

// --- The soak itself ---------------------------------------------------

int64_t SoakMs() {
  const char* env = std::getenv("NWD_SOAK_MS");
  if (env != nullptr) {
    const long long ms = std::atoll(env);
    if (ms > 0) return ms;
  }
  return 1500;
}

struct ProbeRecord {
  bool is_test = false;
  Tuple tuple;
  bool test_result = false;
  std::optional<Tuple> next_result;
  int64_t epoch = -1;
};

struct StreamRecord {
  std::optional<Tuple> from;
  int64_t limit = -1;  // -1 = unbounded
  std::vector<Tuple> answers;
  int64_t epoch = -1;
  bool completed = false;  // `end` (true) vs typed error with epoch (false)
  int64_t count = -1;      // count= on `end`
};

struct ChaosResult {
  std::vector<ProbeRecord> probes;
  std::vector<StreamRecord> streams;
  int64_t ops = 0;
  int64_t reconnects = 0;
};

constexpr const char* kInitialSource = "gen:tree:300:1";
constexpr size_t kMaxRecordsPerThread = 4000;

std::string SpecForRound(int64_t i) {
  const char* classes[] = {"tree", "bdeg", "caterpillar"};
  const int64_t n = 80 + (i * 37) % 250;
  return std::string("gen:") + classes[i % 3] + ":" + std::to_string(n) +
         ":" + std::to_string(i + 1);
}

class SoakHarness {
 public:
  explicit SoakHarness(const fo::Query& query) : query_(query) {
    DaemonOptions options;
    options.max_inflight = 4;
    options.write_timeout_ms = 20000;
    // The hostile soak injects worker deaths by design; dumping the
    // flight recorder to stderr on each would drown the log. The
    // recorder itself stays on — the post-soak `dump` verb checks it.
    options.dump_on_death = false;
    daemon_ = std::make_unique<Daemon>(query, options);
    std::string error;
    if (!daemon_->LoadInitialSnapshot(kInitialSource, &error)) {
      ADD_FAILURE() << error;
    }
    epoch_specs_[1] = kInitialSource;
  }

  Daemon& daemon() { return *daemon_; }

  int Connect() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    daemon_->ServeFd(sv[1], sv[1]);
    return sv[0];
  }

  void RecordEpoch(int64_t epoch, const std::string& spec) {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_specs_[epoch] = spec;
  }

  // The reliable reloader: cycles deterministic specs so the epoch ->
  // graph mapping is never lost, tolerating every transient the hostile
  // soak throws at it (rejections, corrupted frames, worker deaths).
  void ReloaderBody(std::chrono::steady_clock::time_point deadline) {
    int fd = Connect();
    auto client = std::make_unique<Client>(fd, fd, /*seed=*/500);
    int64_t round = 0;
    BackoffPolicy policy;
    policy.base_ms = 1;
    policy.max_ms = 20;
    while (std::chrono::steady_clock::now() < deadline) {
      const std::string spec = SpecForRound(round++);
      Response response;
      if (!client->CallWithRetry("reload " + spec, policy, &response)) {
        // Transport death (injected worker death / frame corruption
        // hang-up): reconnect and move on. A reload that published
        // always got its reply first, so no epoch is ever lost.
        ::close(fd);
        fd = Connect();
        client = std::make_unique<Client>(fd, fd, /*seed=*/500 + round);
        continue;
      }
      if (response.ok) {
        RecordEpoch(response.epoch, spec);
        ++reloads_done_;
      } else if (response.code == ErrorCode::kBadFrame) {
        ::close(fd);  // server hung up on an injected corrupt frame
        fd = Connect();
        client = std::make_unique<Client>(fd, fd, /*seed=*/500 + round);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::close(fd);
  }

  ChaosResult ChaosBody(int id,
                        std::chrono::steady_clock::time_point deadline) {
    ChaosResult result;
    Rng rng(1000 + static_cast<uint64_t>(id));
    int fd = Connect();
    auto client =
        std::make_unique<Client>(fd, fd, /*seed=*/2000 + id);
    auto reconnect = [&] {
      ::close(fd);
      fd = Connect();
      client = std::make_unique<Client>(
          fd, fd, /*seed=*/2000 + id + result.reconnects);
      ++result.reconnects;
    };
    while (std::chrono::steady_clock::now() < deadline) {
      ++result.ops;
      const uint64_t die = rng.NextBounded(100);
      Response response;
      if (die < 8) {
        // Malformed request text: typed BAD_REQUEST, connection lives.
        if (!client->Call("definitely not a request", &response)) {
          reconnect();
          continue;
        }
        if (!response.ok && response.code == ErrorCode::kBadFrame) {
          reconnect();
        }
        continue;
      }
      if (die < 13) {
        // Garbage length prefix: BAD_FRAME and the server hangs up.
        const uint8_t huge[4] = {0xFE, 0xFF, 0xFF, 0x7F};
        (void)!::write(fd, huge, sizeof(huge));
        FdStream raw(fd, fd);
        Response last;
        (void)ReadResponse(&raw, 1 << 20, &last);
        reconnect();
        continue;
      }
      if (die < 18) {
        const char* op = (die % 3 == 0)   ? "stats"
                         : (die % 3 == 1) ? "metrics"
                                          : "dump";
        if (!client->Call(op, &response)) reconnect();
        continue;
      }
      if (die < 23) {
        // Start a stream, read a little, die mid-stream.
        FdStream raw(fd, fd);
        if (!WriteFrame(&raw, "enumerate")) {
          reconnect();
          continue;
        }
        std::string payload;
        (void)ReadFrame(&raw, 1 << 20, &payload);
        reconnect();
        continue;
      }
      if (die < 63) {
        // Probe. 1 in 8 is deliberately out of range or mis-aried.
        const bool is_test = die % 2 == 0;
        Tuple t{static_cast<int64_t>(rng.NextBounded(500)),
                static_cast<int64_t>(rng.NextBounded(500))};
        std::string req = std::string(is_test ? "test " : "next ");
        if (die % 8 == 0) {
          req += "999999,999999";
        } else if (die % 8 == 1) {
          req += "7";
        } else {
          req += FormatTuple(t);
        }
        if (!client->Call(req, &response)) {
          reconnect();
          continue;
        }
        if (!response.ok) {
          if (response.code == ErrorCode::kBadFrame) reconnect();
          continue;  // OUT_OF_RANGE / BAD_REQUEST / RETRY_AFTER / ...
        }
        // Verifiable success: parse the answer out of the head.
        if (response.epoch < 0 ||
            result.probes.size() >= kMaxRecordsPerThread) {
          continue;
        }
        ProbeRecord record;
        record.is_test = is_test;
        record.tuple = t;
        record.epoch = response.epoch;
        const std::string& head = response.head;
        if (is_test) {
          record.test_result = head.find("ok test 1") == 0;
        } else if (head.find("ok next none") == 0) {
          record.next_result = std::nullopt;
        } else {
          Tuple parsed;
          const size_t start = std::string("ok next ").size();
          const size_t end = head.find(' ', start);
          if (!ParseTupleText(
                  std::string_view(head).substr(start, end - start),
                  &parsed)) {
            ADD_FAILURE() << "unparseable next reply: " << head;
            continue;
          }
          record.next_result = std::move(parsed);
        }
        // Probes on components >= n get OUT_OF_RANGE (handled above),
        // so a success here is in-range for its epoch's graph.
        result.probes.push_back(std::move(record));
        continue;
      }
      // Enumerate: bounded limits, optional from= and deadline_ms=.
      std::string req = "enumerate";
      int64_t limit = -1;
      std::optional<Tuple> from;
      if (rng.NextBounded(10) != 0) {
        limit = static_cast<int64_t>(rng.NextBounded(80));
        req += " limit=" + std::to_string(limit);
      }
      if (rng.NextBounded(2) == 0) {
        from = Tuple{static_cast<int64_t>(rng.NextBounded(80)),
                     static_cast<int64_t>(rng.NextBounded(80))};
        req += " from=" + FormatTuple(*from);
      }
      if (rng.NextBounded(8) == 0) {
        req += " deadline_ms=" + std::to_string(1 + rng.NextBounded(4));
      }
      if (!client->Call(req, &response)) {
        reconnect();
        continue;
      }
      if (!response.ok && response.code == ErrorCode::kBadFrame) {
        reconnect();
        continue;
      }
      if (response.epoch < 0 ||
          result.streams.size() >= kMaxRecordsPerThread) {
        continue;  // rejected / out-of-range / eaten by a fault
      }
      StreamRecord record;
      record.from = from;
      record.limit = limit;
      record.answers = response.answers;
      record.epoch = response.epoch;
      record.completed = response.ok;
      record.count = response.count;
      result.streams.push_back(std::move(record));
    }
    ::close(fd);
    return result;
  }

  // Serial replay: rebuilds each epoch's engine from its spec and checks
  // every record bit-for-bit.
  void VerifyAgainstReplay(const std::vector<ChaosResult>& results) {
    struct Replay {
      std::unique_ptr<ColoredGraph> graph;
      std::unique_ptr<EnumerationEngine> engine;
    };
    std::map<int64_t, Replay> engines;
    auto engine_for = [&](int64_t epoch) -> EnumerationEngine* {
      auto it = engines.find(epoch);
      if (it != engines.end()) return it->second.engine.get();
      const auto spec = epoch_specs_.find(epoch);
      if (spec == epoch_specs_.end()) {
        ADD_FAILURE() << "answers on unknown epoch " << epoch
                      << " (epoch mixing?)";
        return nullptr;
      }
      Replay replay;
      replay.graph = std::make_unique<ColoredGraph>();
      std::string error;
      EXPECT_TRUE(BuildGraphFromSource(spec->second, GraphParseLimits{},
                                       replay.graph.get(), &error))
          << error;
      replay.engine = std::make_unique<EnumerationEngine>(
          *replay.graph, query_, EngineOptions{});
      return engines.emplace(epoch, std::move(replay))
          .first->second.engine.get();
    };

    int64_t verified = 0;
    for (const ChaosResult& result : results) {
      for (const ProbeRecord& record : result.probes) {
        EnumerationEngine* engine = engine_for(record.epoch);
        if (engine == nullptr) continue;
        ASSERT_TRUE(TupleInRange(record.tuple, engine->universe()))
            << "daemon accepted an out-of-range probe";
        if (record.is_test) {
          EXPECT_EQ(engine->Test(record.tuple), record.test_result)
              << "test " << FormatTuple(record.tuple) << " on epoch "
              << record.epoch;
        } else {
          EXPECT_EQ(engine->Next(record.tuple), record.next_result)
              << "next " << FormatTuple(record.tuple) << " on epoch "
              << record.epoch;
        }
        ++verified;
      }
      for (const StreamRecord& record : result.streams) {
        EnumerationEngine* engine = engine_for(record.epoch);
        if (engine == nullptr) continue;
        const std::vector<Tuple> expected =
            ReplayStream(*engine, record.from, record.limit);
        if (record.completed) {
          EXPECT_EQ(expected, record.answers)
              << "completed stream diverged on epoch " << record.epoch;
          EXPECT_EQ(static_cast<int64_t>(record.answers.size()),
                    record.count);
        } else {
          // Typed abort: what arrived must be an exact prefix.
          ASSERT_LE(record.answers.size(), expected.size());
          EXPECT_TRUE(std::equal(record.answers.begin(),
                                 record.answers.end(), expected.begin()))
              << "aborted stream not a prefix on epoch " << record.epoch;
        }
        ++verified;
      }
    }
    EXPECT_GT(verified, 0) << "soak recorded nothing verifiable";
  }

  int64_t reloads_done() const { return reloads_done_.load(); }
  size_t epochs_seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_specs_.size();
  }

 private:
  static bool TupleInRange(const Tuple& t, int64_t n) {
    for (const int64_t v : t) {
      if (v < 0 || v >= n) return false;
    }
    return true;
  }

  // Mirrors HandleEnumerate's cursor loop.
  static std::vector<Tuple> ReplayStream(const EnumerationEngine& engine,
                                         const std::optional<Tuple>& from,
                                         int64_t limit) {
    std::vector<Tuple> out;
    const int64_t n = engine.universe();
    Tuple cursor = from.has_value() ? *from : LexMin(engine.arity());
    while (limit < 0 || static_cast<int64_t>(out.size()) < limit) {
      const std::optional<Tuple> next = engine.Next(cursor);
      if (!next.has_value()) break;
      out.push_back(*next);
      cursor = *next;
      if (!LexIncrement(&cursor, n)) break;
    }
    return out;
  }

  const fo::Query query_;
  std::unique_ptr<Daemon> daemon_;
  std::mutex mu_;
  std::map<int64_t, std::string> epoch_specs_;
  std::atomic<int64_t> reloads_done_{0};
};

struct CounterDeltas {
  std::map<std::string, int64_t> before;
  explicit CounterDeltas(const std::vector<std::string>& names) {
    for (const std::string& name : names) {
      before[name] =
          obs::MetricsRegistry::Global().GetCounter(name)->value();
    }
  }
  int64_t Delta(const std::string& name) const {
    return obs::MetricsRegistry::Global().GetCounter(name)->value() -
           before.at(name);
  }
};

// The flight recorder's acceptance check: a `dump` taken after the soak
// has quiesced must replay coherent recent history — no torn events, and
// per-ring sequence numbers / timestamps strictly ordered. The recorder
// ran always-on through every injected fault, so this is the black box
// read back after the crash-storm.
void VerifyDumpCoherence(const Response& response) {
  ASSERT_TRUE(response.ok) << response.head;
  EXPECT_EQ(0u, response.head.find("ok dump ")) << response.head;
  EXPECT_NE(std::string::npos, response.head.find(" torn=0"))
      << "quiescent dump saw torn slots: " << response.head;
  std::istringstream body(response.body);
  std::string line;
  ASSERT_TRUE(std::getline(body, line));
  EXPECT_EQ(0u, line.find("flightdump ")) << line;
  std::map<int, uint64_t> last_seq;
  std::map<int, long long> last_ts;
  int64_t events = 0;
  while (std::getline(body, line)) {
    int ring = -1;
    unsigned long long seq = 0;
    long long ts_ns = -1;
    ASSERT_EQ(3, std::sscanf(line.c_str(),
                             "flight ring=%d seq=%llu ts_ns=%lld", &ring,
                             &seq, &ts_ns))
        << "unparseable flight event: " << line;
    EXPECT_NE(std::string::npos, line.find(" kind=")) << line;
    const auto seq_it = last_seq.find(ring);
    if (seq_it != last_seq.end()) {
      EXPECT_GT(seq, seq_it->second) << "ring " << ring << ": " << line;
      EXPECT_GE(ts_ns, last_ts[ring])
          << "non-monotone timestamp in ring " << ring << ": " << line;
    }
    last_seq[ring] = seq;
    last_ts[ring] = ts_ns;
    ++events;
  }
  EXPECT_GT(events, 0) << "soak left no flight history";
}

void RunSoak(bool hostile) {
  fo::ParseResult parsed = fo::ParseFormula("E(x, y)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  CounterDeltas deltas({"serve.requests", "serve.bad_frames",
                        "serve.responses_ok", "serve.responses_err",
                        "serve.dropped_conns", "serve.worker_deaths"});

  SoakHarness harness(parsed.query);
  std::optional<fault_injection::ScopedFault> fault;
  if (hostile) {
    // Every serving-layer fault, firing on ~3% of hits.
    fault.emplace("serve/*", fault_injection::Mode::kProbabilistic, 0.03);
  } else {
    // Behavior-preserving answer-path faults: slower equivalent routes,
    // answers must stay bit-identical.
    fault.emplace("answer/*", fault_injection::Mode::kProbabilistic, 0.2);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(SoakMs());
  constexpr int kChaosThreads = 4;
  std::vector<ChaosResult> results(kChaosThreads);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { harness.ReloaderBody(deadline); });
  for (int i = 0; i < kChaosThreads; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = harness.ChaosBody(i, deadline); });
  }
  for (std::thread& t : threads) t.join();

  const int64_t fires = fault_injection::FireCount();
  fault.reset();  // disarm before replay (the replay must be fault-free)

  // The soak exercised what it claims to exercise.
  int64_t total_ops = 0;
  for (const ChaosResult& r : results) total_ops += r.ops;
  EXPECT_GT(total_ops, 100) << "soak barely ran";
  EXPECT_GT(harness.reloads_done(), 0) << "no epoch ever swapped";
  EXPECT_GT(harness.epochs_seen(), 1u);
  EXPECT_GT(fires, 0) << "no fault ever fired";

  // The daemon survived: a fresh connection still answers, and the
  // always-on flight recorder replays coherent history through a `dump`.
  {
    const int fd = harness.Connect();
    Client client(fd, fd, /*seed=*/9999);
    Response response;
    ASSERT_TRUE(client.Call("ping", &response));
    EXPECT_TRUE(response.ok);
    ASSERT_TRUE(client.Call("dump", &response));
    VerifyDumpCoherence(response);
    ::close(fd);
  }

  // Accounting identity, once the handlers have quiesced (all chaos fds
  // are closed; handlers finish their last request and exit).
  bool balanced = false;
  for (int i = 0; i < 5000 && !balanced; ++i) {
    balanced = deltas.Delta("serve.requests") +
                   deltas.Delta("serve.bad_frames") ==
               deltas.Delta("serve.responses_ok") +
                   deltas.Delta("serve.responses_err") +
                   deltas.Delta("serve.dropped_conns") +
                   deltas.Delta("serve.worker_deaths");
    if (!balanced) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(balanced) << "accounting identity never closed: requests="
                        << deltas.Delta("serve.requests") << " bad_frames="
                        << deltas.Delta("serve.bad_frames") << " ok="
                        << deltas.Delta("serve.responses_ok") << " err="
                        << deltas.Delta("serve.responses_err")
                        << " dropped="
                        << deltas.Delta("serve.dropped_conns") << " deaths="
                        << deltas.Delta("serve.worker_deaths");

  // Bit-identical serial replay of everything the clients kept.
  harness.VerifyAgainstReplay(results);

  // One summary line so acceptance runs (NWD_SOAK_MS=30000) leave
  // citable numbers in the log.
  std::printf(
      "[soak %s] %lldms ops=%lld reloads=%lld epochs=%zu fault_fires=%lld "
      "requests=%lld ok=%lld err=%lld dropped=%lld deaths=%lld "
      "bad_frames=%lld\n",
      hostile ? "hostile" : "clean", static_cast<long long>(SoakMs()),
      static_cast<long long>(total_ops),
      static_cast<long long>(harness.reloads_done()), harness.epochs_seen(),
      static_cast<long long>(fires),
      static_cast<long long>(deltas.Delta("serve.requests")),
      static_cast<long long>(deltas.Delta("serve.responses_ok")),
      static_cast<long long>(deltas.Delta("serve.responses_err")),
      static_cast<long long>(deltas.Delta("serve.dropped_conns")),
      static_cast<long long>(deltas.Delta("serve.worker_deaths")),
      static_cast<long long>(deltas.Delta("serve.bad_frames")));
}

TEST(ServeSoakTest, CleanSoakRepliesBitIdenticalUnderAnswerFaults) {
  RunSoak(/*hostile=*/false);
}

TEST(ServeSoakTest, HostileSoakSurvivesEveryServingFault) {
  RunSoak(/*hostile=*/true);
}

}  // namespace
}  // namespace serve
}  // namespace nwd
