// API-contract properties of Theorem 2.3's Next(): monotonicity,
// idempotence, and agreement with Test() — plus parser robustness against
// arbitrary input.

#include <gtest/gtest.h>

#include <string>

#include "enumerate/engine.h"
#include "fo/builders.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace nwd {
namespace {

class NextContractTest : public ::testing::TestWithParam<int> {};

TEST_P(NextContractTest, MonotoneIdempotentAndAgreesWithTest) {
  Rng rng(GetParam());
  const ColoredGraph g =
      gen::BoundedDegreeGraph(70, 4, 2.3, {2, 0.35}, &rng);
  EngineOptions options;
  options.naive_cutoff = 10;
  const std::vector<fo::Query> queries = {
      fo::DistanceQuery(2),
      fo::FarColorQuery(2, 0),
      fo::ColoredPairQuery(0, 1, 2),
  };
  for (const fo::Query& q : queries) {
    const EnumerationEngine engine(g, q, options);
    for (int trial = 0; trial < 100; ++trial) {
      Tuple from{static_cast<Vertex>(rng.NextBounded(70)),
                 static_cast<Vertex>(rng.NextBounded(70))};
      const auto next = engine.Next(from);
      if (!next.has_value()) {
        // Nothing >= from: in particular `from` itself is not a solution.
        EXPECT_FALSE(engine.Test(from));
        continue;
      }
      // Monotone: Next(from) >= from.
      EXPECT_GE(LexCompare(*next, from), 0);
      // Sound: the result is a solution.
      EXPECT_TRUE(engine.Test(*next));
      // Idempotent: Next of a solution is itself.
      const auto again = engine.Next(*next);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *next);
      // Agreement: Test(from) iff Next(from) == from.
      EXPECT_EQ(engine.Test(from), *next == from);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NextContractTest, ::testing::Range(0, 5));

TEST(ParserFuzz, ArbitraryInputNeverCrashes) {
  Rng rng(99);
  const std::string alphabet =
      "xyzEC01()&|!=<>. distexistsforalltrue,";
  for (int trial = 0; trial < 3000; ++trial) {
    const int length = static_cast<int>(rng.NextBounded(40));
    std::string text;
    for (int i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    // Must either parse or produce an error message — never crash, never
    // return an inconsistent result.
    const fo::ParseResult formula = fo::ParseFormula(text);
    if (!formula.ok) {
      EXPECT_FALSE(formula.error.empty()) << text;
    }
    const fo::ParseResult query = fo::ParseQuery(text);
    if (!query.ok) {
      EXPECT_FALSE(query.error.empty()) << text;
    }
  }
}

TEST(ParserFuzz, ValidQueriesSurviveMutation) {
  // Mutate a valid query by deleting one character at a time; the parser
  // must handle every mutant gracefully.
  const std::string base = "(x, y) := dist(x, y) <= 2 & !(C0(y)) | x = y";
  for (size_t drop = 0; drop < base.size(); ++drop) {
    std::string mutant = base;
    mutant.erase(drop, 1);
    const fo::ParseResult r = fo::ParseQuery(mutant);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << mutant;
    }
  }
}

}  // namespace
}  // namespace nwd
