// nwdq — a tiny command-line query runner over colored-graph files.
//
// Usage:
//   nwdq <graph-file> '<query>' [--limit N] [--count] [--test a,b,...]
//        [--next a,b,...] [--explain] [--color Name=idx]...
//
// Examples:
//   nwdq city.g '(x, y) := dist(x, y) <= 4 & C0(y)' --limit 10
//   nwdq net.g  '(x, y) := Blue(y) & dist(x,y) > 2' --color Blue=0 --count
//   nwdq net.g  '(x, y) := E(x, y)' --test 3,7
//
// Demonstrates downstream-tool usage of the full public API: graph I/O,
// the parser, the engine, counting, testing, next-solution and
// constant-delay enumeration.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "enumerate/counting.h"
#include "enumerate/engine.h"
#include "enumerate/lnf.h"
#include "enumerate/enumerator.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/io.h"
#include "util/timer.h"

namespace {

bool ParseTuple(const char* text, int arity, nwd::Tuple* out) {
  out->clear();
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    out->push_back(std::strtoll(p, &end, 10));
    if (end == p) return false;
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') return false;
  }
  return static_cast<int>(out->size()) == arity;
}

// The engine contract requires probe components in [0, n); report bad
// user input as an error instead of tripping the engine's NWD_CHECK.
bool TupleInRange(const nwd::Tuple& t, int64_t num_vertices,
                  const char* flag) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 0 || t[i] >= num_vertices) {
      std::fprintf(stderr,
                   "error: %s tuple component %zu is %lld, outside the "
                   "graph's vertex range [0, %lld)\n",
                   flag, i, static_cast<long long>(t[i]),
                   static_cast<long long>(num_vertices));
      return false;
    }
  }
  return true;
}

void PrintTuple(const nwd::Tuple& t) {
  std::printf("(");
  for (size_t i = 0; i < t.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", static_cast<long long>(t[i]));
  }
  std::printf(")");
}

int Usage() {
  std::fprintf(stderr,
               "usage: nwdq <graph-file> '<query>' [--limit N] [--count]\n"
               "            [--test a,b,..] [--next a,b,..] "
               "[--color Name=idx]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string graph_path = argv[1];
  const std::string query_text = argv[2];

  int64_t limit = 20;
  bool count = false;
  bool explain = false;
  const char* test_tuple = nullptr;
  const char* next_tuple = nullptr;
  std::map<std::string, int> color_names;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--limit" && i + 1 < argc) {
      limit = std::atoll(argv[++i]);
    } else if (arg == "--count") {
      count = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--test" && i + 1 < argc) {
      test_tuple = argv[++i];
    } else if (arg == "--next" && i + 1 < argc) {
      next_tuple = argv[++i];
    } else if (arg == "--color" && i + 1 < argc) {
      const std::string binding = argv[++i];
      const size_t eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      color_names[binding.substr(0, eq)] =
          std::atoi(binding.c_str() + eq + 1);
    } else {
      return Usage();
    }
  }

  const nwd::GraphParseResult graph = nwd::ReadGraphFromFile(graph_path);
  if (!graph.ok) {
    std::fprintf(stderr, "error: %s\n", graph.error.c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.graph.DebugString().c_str());

  nwd::fo::ParseResult parsed =
      nwd::fo::ParseQuery(query_text, color_names);
  if (!parsed.ok) {
    // Also accept a bare formula without the "(x,y) :=" header.
    parsed = nwd::fo::ParseFormula(query_text, color_names);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "query error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("query: %s\n", nwd::fo::ToString(parsed.query).c_str());

  if (explain) {
    const nwd::Lnf lnf = nwd::CompileToLnf(parsed.query);
    std::printf("%s", nwd::DescribeLnf(lnf).c_str());
    return 0;
  }

  nwd::Timer prep;
  const nwd::EnumerationEngine engine(graph.graph, parsed.query);
  std::printf("preprocessing: %.3fs (%s)\n", prep.ElapsedSeconds(),
              engine.used_fallback()
                  ? engine.stats().fallback_reason.c_str()
                  : "LNF engine");

  if (test_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(test_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --test tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--test")) return 1;
    std::printf("test ");
    PrintTuple(t);
    std::printf(" = %s\n", engine.Test(t) ? "solution" : "not a solution");
    return 0;
  }
  if (next_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(next_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --next tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--next")) return 1;
    const auto next = engine.Next(t);
    std::printf("next ");
    PrintTuple(t);
    if (next.has_value()) {
      std::printf(" = ");
      PrintTuple(*next);
      std::printf("\n");
    } else {
      std::printf(" = none\n");
    }
    return 0;
  }
  if (count) {
    nwd::Timer timer;
    const nwd::CountResult result =
        nwd::CountSolutions(graph.graph, parsed.query);
    std::printf("count = %lld (%.3fs, %s)\n",
                static_cast<long long>(result.count),
                timer.ElapsedSeconds(),
                result.fast_path ? "ball counting" : "enumeration");
    return 0;
  }

  nwd::ConstantDelayEnumerator enumerator(engine);
  int64_t produced = 0;
  for (auto t = enumerator.NextSolution();
       t.has_value() && produced < limit; t = enumerator.NextSolution()) {
    PrintTuple(*t);
    std::printf("\n");
    ++produced;
  }
  if (produced == limit && limit > 0) {
    std::printf("... (limit %lld reached)\n", static_cast<long long>(limit));
  }
  return 0;
}
