// nwdq — a tiny command-line query runner over colored-graph files.
//
// Usage:
//   nwdq <graph-file> '<query>' [--limit N] [--count] [--test a,b,...]
//        [--next a,b,...] [--explain] [--dump-program] [--color Name=idx]...
//        [--budget-ms N] [--max-edge-work N] [--max-avg-degree X]
//        [--probe-file FILE] [--answer-threads N]
//        [--metrics-json FILE] [--metrics-prom FILE] [--trace-json FILE]
//
// Examples:
//   nwdq city.g '(x, y) := dist(x, y) <= 4 & C0(y)' --limit 10
//   nwdq net.g  '(x, y) := Blue(y) & dist(x,y) > 2' --color Blue=0 --count
//   nwdq net.g  '(x, y) := E(x, y)' --test 3,7
//   nwdq web.g  '(x, y) := E(x, y)' --budget-ms 100   # degrade, don't hang
//   nwdq net.g  '(x, y) := E(x, y)' --probe-file probes.txt
//               --answer-threads 8                    # batched serving
//
// --explain prints the LNF normal form the engine enumerates from;
// --dump-program prints the flat bytecode the engine compiled it to (or
// the reason compilation was skipped), then exits.
//
// --metrics-json / --metrics-prom / --trace-json enable the observability
// layer and write its artifacts when the run finishes: a metrics snapshot
// (nwd-metrics/1 schema or Prometheus text exposition, fleet-scrapeable
// with tools/nwd-stat) and a chrome://tracing-compatible span timeline
// covering every prepare stage and answer call.
//
// A probe file holds one probe per line: `test a,b,...`, `next a,b,...`,
// or a bare tuple `a,b,...` (treated as test). Blank lines and lines
// starting with '#' are skipped; CRLF line endings and a missing final
// newline are tolerated. Answers print in input order; with
// --answer-threads N the probes are served by N concurrent workers
// (answers are bit-identical to serial). --answer-threads also switches
// plain enumeration to the sharded parallel enumerator.
//
// Demonstrates downstream-tool usage of the full public API: graph I/O,
// the parser, the engine (including budgeted preprocessing with graceful
// degradation), counting, testing, next-solution and constant-delay
// enumeration.
//
// Error contract: exit 0 on success (including degraded runs — answers
// stay correct), 1 on bad data (unreadable/malformed graph, bad query,
// out-of-range tuples), 2 on usage errors (unknown or malformed flags).
// Every failure prints a one-line diagnostic to stderr; no input aborts
// the process.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compile/program.h"
#include "enumerate/counting.h"
#include "enumerate/engine.h"
#include "enumerate/lnf.h"
#include "enumerate/enumerator.h"
#include "fo/analysis.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace {

// Strict numeric flag parsing: the whole argument must be one number
// (atoll-style silent truncation turns "--limit 1x0" into 1).
bool ParseInt64Flag(const char* flag, const char* text, int64_t min_value,
                    int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value) {
    std::fprintf(stderr, "error: %s expects an integer >= %lld, got '%s'\n",
                 flag, static_cast<long long>(min_value), text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0.0) {
    std::fprintf(stderr, "error: %s expects a number >= 0, got '%s'\n", flag,
                 text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseTuple(const char* text, int arity, nwd::Tuple* out) {
  out->clear();
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    out->push_back(std::strtoll(p, &end, 10));
    if (end == p) return false;
    if (*end == ',') {
      p = end + 1;
      if (*p == '\0') return false;  // trailing comma: "3,7," is malformed
    } else {
      p = end;
      if (*p != '\0') return false;
    }
  }
  return static_cast<int>(out->size()) == arity;
}

// The engine contract requires probe components in [0, n); report bad
// user input as an error instead of tripping the engine's NWD_CHECK.
bool TupleInRange(const nwd::Tuple& t, int64_t num_vertices,
                  const char* flag) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 0 || t[i] >= num_vertices) {
      std::fprintf(stderr,
                   "error: %s tuple component %zu is %lld, outside the "
                   "graph's vertex range [0, %lld)\n",
                   flag, i, static_cast<long long>(t[i]),
                   static_cast<long long>(num_vertices));
      return false;
    }
  }
  return true;
}

// True once stdout has failed (typically EPIPE: the consumer — `head`,
// a pager, a dying pipeline — went away). Enumeration loops poll this
// and shut down cleanly instead of letting SIGPIPE kill the process
// mid-stream; see main(), which ignores the signal.
bool StdoutBroken() { return std::ferror(stdout) != 0; }

// Diagnostic for the broken-pipe shutdown path: stderr still works even
// when stdout is gone, and a truncated-by-consumer run is a success
// (exit 0), not an error.
void ReportOutputClosed(long long produced) {
  std::fprintf(stderr,
               "nwdq: output closed after %lld answers; stopping cleanly\n",
               produced);
  std::fflush(stderr);
}

void PrintTuple(const nwd::Tuple& t) {
  std::printf("(");
  for (size_t i = 0; i < t.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", static_cast<long long>(t[i]));
  }
  std::printf(")");
}

int Usage() {
  std::fprintf(stderr,
               "usage: nwdq <graph-file> '<query>' [--limit N] [--count]\n"
               "            [--test a,b,..] [--next a,b,..] [--explain]\n"
               "            [--dump-program] [--color Name=idx]...\n"
               "            [--budget-ms N] [--max-edge-work N] "
               "[--max-avg-degree X]\n"
               "            [--probe-file FILE] [--answer-threads N]\n"
               "            [--metrics-json FILE] [--metrics-prom FILE]\n"
               "            [--trace-json FILE]\n");
  return 2;
}

// Scrapes the observability artifacts at scope exit, so every exit path
// after flag parsing (success, degraded, bad probe file) leaves them
// behind — a failed run's trace is exactly the one worth reading.
struct ObsExport {
  std::ofstream metrics;
  std::ofstream metrics_prom;
  std::ofstream trace;
  ~ObsExport() {
    if (metrics.is_open()) {
      nwd::obs::MetricsRegistry::Global().WriteJson(metrics);
    }
    if (metrics_prom.is_open()) nwd::obs::WriteGlobalPrometheus(metrics_prom);
    if (trace.is_open()) nwd::obs::Tracer::Global().WriteJson(trace);
  }
};

// One parsed probe-file line.
struct Probe {
  bool is_next = false;  // false = test
  nwd::Tuple tuple;
};

// Parses `path` into probes. Returns false (with a diagnostic) on any
// malformed or out-of-range line — bad batch input is all-or-nothing.
bool ReadProbeFile(const std::string& path, int arity, int64_t num_vertices,
                   std::vector<Probe>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read probe file '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline strips '\n' but keeps a CRLF file's '\r'; drop it (plus any
    // trailing blanks) so ParseTuple sees a clean terminator.
    const size_t last = line.find_last_not_of(" \t\r");
    line.resize(last == std::string::npos ? 0 : last + 1);
    size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#') continue;
    Probe probe;
    const char* rest = line.c_str() + begin;
    if (std::strncmp(rest, "test", 4) == 0 &&
        (rest[4] == ' ' || rest[4] == '\t')) {
      rest += 5;
    } else if (std::strncmp(rest, "next", 4) == 0 &&
               (rest[4] == ' ' || rest[4] == '\t')) {
      probe.is_next = true;
      rest += 5;
    }
    while (*rest == ' ' || *rest == '\t') ++rest;
    if (!ParseTuple(rest, arity, &probe.tuple)) {
      std::fprintf(stderr, "error: %s:%lld: expected %d comma-separated "
                   "vertices, got '%s'\n",
                   path.c_str(), static_cast<long long>(line_no), arity,
                   rest);
      return false;
    }
    const std::string where =
        path + ":" + std::to_string(line_no) + ": probe";
    if (!TupleInRange(probe.tuple, num_vertices, where.c_str())) {
      return false;
    }
    out->push_back(std::move(probe));
  }
  return true;
}

// Serves a probe file through the batch APIs and prints one answer line
// per probe, in input order.
int ServeProbeFile(const nwd::EnumerationEngine& engine,
                   const std::vector<Probe>& probes, int answer_threads) {
  std::vector<nwd::Tuple> tests;
  std::vector<nwd::Tuple> nexts;
  for (const Probe& probe : probes) {
    (probe.is_next ? nexts : tests).push_back(probe.tuple);
  }
  nwd::Timer timer;
  const std::vector<uint8_t> test_answers =
      engine.TestBatch(tests, answer_threads);
  const std::vector<std::optional<nwd::Tuple>> next_answers =
      engine.NextBatch(nexts, answer_threads);
  const double elapsed = timer.ElapsedSeconds();
  size_t ti = 0;
  size_t ni = 0;
  size_t printed = 0;
  for (const Probe& probe : probes) {
    if (StdoutBroken()) {
      ReportOutputClosed(static_cast<long long>(printed));
      return 0;
    }
    ++printed;
    std::printf("%s ", probe.is_next ? "next" : "test");
    PrintTuple(probe.tuple);
    if (probe.is_next) {
      const std::optional<nwd::Tuple>& next = next_answers[ni++];
      if (next.has_value()) {
        std::printf(" = ");
        PrintTuple(*next);
        std::printf("\n");
      } else {
        std::printf(" = none\n");
      }
    } else {
      std::printf(" = %s\n",
                  test_answers[ti++] ? "solution" : "not a solution");
    }
  }
  std::printf("served %zu probes with %d thread%s in %.3fs\n", probes.size(),
              answer_threads, answer_threads == 1 ? "" : "s", elapsed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Piping enumeration into `head` (or any consumer that exits early)
  // must end the run with a clean exit 0, not a SIGPIPE kill: ignore the
  // signal so writes fail with EPIPE instead, and let the output loops
  // detect the failure via StdoutBroken().
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 3) return Usage();
  const std::string graph_path = argv[1];
  const std::string query_text = argv[2];

  int64_t limit = 20;
  bool count = false;
  bool explain = false;
  bool dump_program = false;
  const char* test_tuple = nullptr;
  const char* next_tuple = nullptr;
  const char* probe_file = nullptr;
  int64_t answer_threads = 1;
  std::map<std::string, int> color_names;
  nwd::EngineOptions engine_options;
  ObsExport obs_export;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--limit" && i + 1 < argc) {
      if (!ParseInt64Flag("--limit", argv[++i], 0, &limit)) return 2;
    } else if (arg == "--count") {
      count = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--dump-program") {
      dump_program = true;
    } else if (arg == "--test" && i + 1 < argc) {
      test_tuple = argv[++i];
    } else if (arg == "--next" && i + 1 < argc) {
      next_tuple = argv[++i];
    } else if (arg == "--probe-file" && i + 1 < argc) {
      probe_file = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      const char* path = argv[++i];
      obs_export.metrics.open(path, std::ios::trunc);
      if (!obs_export.metrics.is_open()) {
        std::fprintf(stderr, "error: cannot write metrics file '%s'\n", path);
        return 1;
      }
      nwd::obs::SetMetricsEnabled(true);
    } else if (arg == "--metrics-prom" && i + 1 < argc) {
      const char* path = argv[++i];
      obs_export.metrics_prom.open(path, std::ios::trunc);
      if (!obs_export.metrics_prom.is_open()) {
        std::fprintf(stderr, "error: cannot write metrics file '%s'\n", path);
        return 1;
      }
      nwd::obs::SetMetricsEnabled(true);
    } else if (arg == "--trace-json" && i + 1 < argc) {
      const char* path = argv[++i];
      obs_export.trace.open(path, std::ios::trunc);
      if (!obs_export.trace.is_open()) {
        std::fprintf(stderr, "error: cannot write trace file '%s'\n", path);
        return 1;
      }
      nwd::obs::SetTraceEnabled(true);
    } else if (arg == "--answer-threads" && i + 1 < argc) {
      if (!ParseInt64Flag("--answer-threads", argv[++i], 1,
                          &answer_threads)) {
        return 2;
      }
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--budget-ms", argv[++i], 1,
                          &engine_options.budget.deadline_ms)) {
        return 2;
      }
    } else if (arg == "--max-edge-work" && i + 1 < argc) {
      if (!ParseInt64Flag("--max-edge-work", argv[++i], 1,
                          &engine_options.budget.max_edge_work)) {
        return 2;
      }
    } else if (arg == "--max-avg-degree" && i + 1 < argc) {
      if (!ParseDoubleFlag("--max-avg-degree", argv[++i],
                           &engine_options.budget.max_avg_degree)) {
        return 2;
      }
    } else if (arg == "--color" && i + 1 < argc) {
      const std::string binding = argv[++i];
      const size_t eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      int64_t color_id = -1;
      if (!ParseInt64Flag("--color", binding.c_str() + eq + 1, 0,
                          &color_id)) {
        return 2;
      }
      color_names[binding.substr(0, eq)] = static_cast<int>(color_id);
    } else {
      return Usage();
    }
  }

  const nwd::GraphParseResult graph = nwd::ReadGraphFromFile(graph_path);
  if (!graph.ok) {
    std::fprintf(stderr, "error: %s\n", graph.error.c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.graph.DebugString().c_str());

  nwd::fo::ParseResult parsed =
      nwd::fo::ParseQuery(query_text, color_names);
  if (!parsed.ok) {
    // Also accept a bare formula without the "(x,y) :=" header.
    parsed = nwd::fo::ParseFormula(query_text, color_names);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "query error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("query: %s\n", nwd::fo::ToString(parsed.query).c_str());

  // The evaluators index colors without range checks; reject a query that
  // references colors the graph does not carry.
  const int max_color = nwd::fo::MaxColorId(parsed.query.formula);
  if (max_color >= graph.graph.NumColors()) {
    std::fprintf(stderr,
                 "query error: color C%d out of range (graph has %d "
                 "colors)\n",
                 max_color, graph.graph.NumColors());
    return 1;
  }

  if (explain) {
    const nwd::Lnf lnf = nwd::CompileToLnf(parsed.query);
    std::printf("%s", nwd::DescribeLnf(lnf).c_str());
    return 0;
  }

  nwd::Timer prep;
  const nwd::EnumerationEngine engine(graph.graph, parsed.query,
                                      engine_options);
  std::printf("preprocessing: %.3fs (%s)\n", prep.ElapsedSeconds(),
              engine.used_fallback()
                  ? engine.stats().fallback_reason.c_str()
                  : "LNF engine");
  if (engine.stats().degraded) {
    std::printf("degraded: stage %s after %.1f ms / %lld work units\n",
                engine.stats().tripped_stage.empty()
                    ? "(unattributed)"
                    : engine.stats().tripped_stage.c_str(),
                engine.stats().budget_elapsed_ms,
                static_cast<long long>(engine.stats().budget_edge_work));
  }

  if (dump_program) {
    if (engine.compiled_query() != nullptr) {
      std::printf("%s", engine.compiled_query()->Disassemble().c_str());
    } else {
      const std::string& reason = engine.stats().not_compiled_reason;
      std::printf("no compiled program (%s)\n",
                  !reason.empty()          ? reason.c_str()
                  : engine.used_fallback() ? "fallback engine has no LNF"
                                           : "unknown");
    }
    return 0;
  }
  if (probe_file != nullptr) {
    std::vector<Probe> probes;
    if (!ReadProbeFile(probe_file, engine.arity(),
                       graph.graph.NumVertices(), &probes)) {
      return 1;
    }
    return ServeProbeFile(engine, probes,
                          static_cast<int>(answer_threads));
  }
  if (test_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(test_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --test tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--test")) return 1;
    std::printf("test ");
    PrintTuple(t);
    std::printf(" = %s\n", engine.Test(t) ? "solution" : "not a solution");
    return 0;
  }
  if (next_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(next_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --next tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--next")) return 1;
    const auto next = engine.Next(t);
    std::printf("next ");
    PrintTuple(t);
    if (next.has_value()) {
      std::printf(" = ");
      PrintTuple(*next);
      std::printf("\n");
    } else {
      std::printf(" = none\n");
    }
    return 0;
  }
  if (count) {
    nwd::Timer timer;
    const nwd::CountResult result =
        nwd::CountSolutions(graph.graph, parsed.query);
    std::printf("count = %lld (%.3fs, %s)\n",
                static_cast<long long>(result.count),
                timer.ElapsedSeconds(),
                result.fast_path ? "ball counting" : "enumeration");
    return 0;
  }

  int64_t produced = 0;
  if (answer_threads > 1) {
    // Sharded parallel enumeration; the stream is identical to the serial
    // enumerator's.
    const std::vector<nwd::Tuple> solutions =
        engine.EnumerateParallel(static_cast<int>(answer_threads), limit);
    for (const nwd::Tuple& t : solutions) {
      PrintTuple(t);
      std::printf("\n");
      ++produced;
      if (StdoutBroken()) {
        ReportOutputClosed(produced);
        return 0;
      }
    }
  } else {
    nwd::ConstantDelayEnumerator enumerator(engine);
    for (auto t = enumerator.NextSolution();
         t.has_value() && produced < limit; t = enumerator.NextSolution()) {
      PrintTuple(*t);
      std::printf("\n");
      ++produced;
      if (StdoutBroken()) {
        ReportOutputClosed(produced);
        return 0;
      }
    }
  }
  if (produced == limit && limit > 0) {
    std::printf("... (limit %lld reached)\n", static_cast<long long>(limit));
  }
  return 0;
}
