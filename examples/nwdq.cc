// nwdq — a tiny command-line query runner over colored-graph files.
//
// Usage:
//   nwdq <graph-file> '<query>' [--limit N] [--count] [--test a,b,...]
//        [--next a,b,...] [--explain] [--color Name=idx]...
//        [--budget-ms N] [--max-edge-work N] [--max-avg-degree X]
//
// Examples:
//   nwdq city.g '(x, y) := dist(x, y) <= 4 & C0(y)' --limit 10
//   nwdq net.g  '(x, y) := Blue(y) & dist(x,y) > 2' --color Blue=0 --count
//   nwdq net.g  '(x, y) := E(x, y)' --test 3,7
//   nwdq web.g  '(x, y) := E(x, y)' --budget-ms 100   # degrade, don't hang
//
// Demonstrates downstream-tool usage of the full public API: graph I/O,
// the parser, the engine (including budgeted preprocessing with graceful
// degradation), counting, testing, next-solution and constant-delay
// enumeration.
//
// Error contract: exit 0 on success (including degraded runs — answers
// stay correct), 1 on bad data (unreadable/malformed graph, bad query,
// out-of-range tuples), 2 on usage errors (unknown or malformed flags).
// Every failure prints a one-line diagnostic to stderr; no input aborts
// the process.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "enumerate/counting.h"
#include "enumerate/engine.h"
#include "enumerate/lnf.h"
#include "enumerate/enumerator.h"
#include "fo/analysis.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/io.h"
#include "util/timer.h"

namespace {

// Strict numeric flag parsing: the whole argument must be one number
// (atoll-style silent truncation turns "--limit 1x0" into 1).
bool ParseInt64Flag(const char* flag, const char* text, int64_t min_value,
                    int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value) {
    std::fprintf(stderr, "error: %s expects an integer >= %lld, got '%s'\n",
                 flag, static_cast<long long>(min_value), text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0.0) {
    std::fprintf(stderr, "error: %s expects a number >= 0, got '%s'\n", flag,
                 text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseTuple(const char* text, int arity, nwd::Tuple* out) {
  out->clear();
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    out->push_back(std::strtoll(p, &end, 10));
    if (end == p) return false;
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') return false;
  }
  return static_cast<int>(out->size()) == arity;
}

// The engine contract requires probe components in [0, n); report bad
// user input as an error instead of tripping the engine's NWD_CHECK.
bool TupleInRange(const nwd::Tuple& t, int64_t num_vertices,
                  const char* flag) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 0 || t[i] >= num_vertices) {
      std::fprintf(stderr,
                   "error: %s tuple component %zu is %lld, outside the "
                   "graph's vertex range [0, %lld)\n",
                   flag, i, static_cast<long long>(t[i]),
                   static_cast<long long>(num_vertices));
      return false;
    }
  }
  return true;
}

void PrintTuple(const nwd::Tuple& t) {
  std::printf("(");
  for (size_t i = 0; i < t.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", static_cast<long long>(t[i]));
  }
  std::printf(")");
}

int Usage() {
  std::fprintf(stderr,
               "usage: nwdq <graph-file> '<query>' [--limit N] [--count]\n"
               "            [--test a,b,..] [--next a,b,..] "
               "[--color Name=idx]...\n"
               "            [--budget-ms N] [--max-edge-work N] "
               "[--max-avg-degree X]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string graph_path = argv[1];
  const std::string query_text = argv[2];

  int64_t limit = 20;
  bool count = false;
  bool explain = false;
  const char* test_tuple = nullptr;
  const char* next_tuple = nullptr;
  std::map<std::string, int> color_names;
  nwd::EngineOptions engine_options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--limit" && i + 1 < argc) {
      if (!ParseInt64Flag("--limit", argv[++i], 0, &limit)) return 2;
    } else if (arg == "--count") {
      count = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--test" && i + 1 < argc) {
      test_tuple = argv[++i];
    } else if (arg == "--next" && i + 1 < argc) {
      next_tuple = argv[++i];
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--budget-ms", argv[++i], 1,
                          &engine_options.budget.deadline_ms)) {
        return 2;
      }
    } else if (arg == "--max-edge-work" && i + 1 < argc) {
      if (!ParseInt64Flag("--max-edge-work", argv[++i], 1,
                          &engine_options.budget.max_edge_work)) {
        return 2;
      }
    } else if (arg == "--max-avg-degree" && i + 1 < argc) {
      if (!ParseDoubleFlag("--max-avg-degree", argv[++i],
                           &engine_options.budget.max_avg_degree)) {
        return 2;
      }
    } else if (arg == "--color" && i + 1 < argc) {
      const std::string binding = argv[++i];
      const size_t eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      int64_t color_id = -1;
      if (!ParseInt64Flag("--color", binding.c_str() + eq + 1, 0,
                          &color_id)) {
        return 2;
      }
      color_names[binding.substr(0, eq)] = static_cast<int>(color_id);
    } else {
      return Usage();
    }
  }

  const nwd::GraphParseResult graph = nwd::ReadGraphFromFile(graph_path);
  if (!graph.ok) {
    std::fprintf(stderr, "error: %s\n", graph.error.c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.graph.DebugString().c_str());

  nwd::fo::ParseResult parsed =
      nwd::fo::ParseQuery(query_text, color_names);
  if (!parsed.ok) {
    // Also accept a bare formula without the "(x,y) :=" header.
    parsed = nwd::fo::ParseFormula(query_text, color_names);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "query error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("query: %s\n", nwd::fo::ToString(parsed.query).c_str());

  // The evaluators index colors without range checks; reject a query that
  // references colors the graph does not carry.
  const int max_color = nwd::fo::MaxColorId(parsed.query.formula);
  if (max_color >= graph.graph.NumColors()) {
    std::fprintf(stderr,
                 "query error: color C%d out of range (graph has %d "
                 "colors)\n",
                 max_color, graph.graph.NumColors());
    return 1;
  }

  if (explain) {
    const nwd::Lnf lnf = nwd::CompileToLnf(parsed.query);
    std::printf("%s", nwd::DescribeLnf(lnf).c_str());
    return 0;
  }

  nwd::Timer prep;
  const nwd::EnumerationEngine engine(graph.graph, parsed.query,
                                      engine_options);
  std::printf("preprocessing: %.3fs (%s)\n", prep.ElapsedSeconds(),
              engine.used_fallback()
                  ? engine.stats().fallback_reason.c_str()
                  : "LNF engine");
  if (engine.stats().degraded) {
    std::printf("degraded: stage %s after %.1f ms / %lld work units\n",
                engine.stats().tripped_stage.empty()
                    ? "(unattributed)"
                    : engine.stats().tripped_stage.c_str(),
                engine.stats().budget_elapsed_ms,
                static_cast<long long>(engine.stats().budget_edge_work));
  }

  if (test_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(test_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --test tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--test")) return 1;
    std::printf("test ");
    PrintTuple(t);
    std::printf(" = %s\n", engine.Test(t) ? "solution" : "not a solution");
    return 0;
  }
  if (next_tuple != nullptr) {
    nwd::Tuple t;
    if (!ParseTuple(next_tuple, engine.arity(), &t)) {
      std::fprintf(stderr, "bad --next tuple\n");
      return 1;
    }
    if (!TupleInRange(t, graph.graph.NumVertices(), "--next")) return 1;
    const auto next = engine.Next(t);
    std::printf("next ");
    PrintTuple(t);
    if (next.has_value()) {
      std::printf(" = ");
      PrintTuple(*next);
      std::printf("\n");
    } else {
      std::printf(" = none\n");
    }
    return 0;
  }
  if (count) {
    nwd::Timer timer;
    const nwd::CountResult result =
        nwd::CountSolutions(graph.graph, parsed.query);
    std::printf("count = %lld (%.3fs, %s)\n",
                static_cast<long long>(result.count),
                timer.ElapsedSeconds(),
                result.fast_path ? "ball counting" : "enumeration");
    return 0;
  }

  nwd::ConstantDelayEnumerator enumerator(engine);
  int64_t produced = 0;
  for (auto t = enumerator.NextSolution();
       t.has_value() && produced < limit; t = enumerator.NextSolution()) {
    PrintTuple(*t);
    std::printf("\n");
    ++produced;
  }
  if (produced == limit && limit > 0) {
    std::printf("... (limit %lld reached)\n", static_cast<long long>(limit));
  }
  return 0;
}
