// A guided tour through the paper's running examples, executed live:
//
//   Example 1-A/1-B (Section 4): the distance-2 query and its reduction
//     to neighborhood-cover bags,
//   Example 1-C: Splitter's move and the removal recoloring,
//   Example 2 (Section 5.1.5): "blue nodes far from x" and the skip
//     pointers,
//   plus the independence sentences of the normal form (Section 5.1.2).

#include <cmath>
#include <cstdio>

#include "cover/kernel.h"
#include "cover/neighborhood_cover.h"
#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "enumerate/independence.h"
#include "fo/builders.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "removal/removal.h"
#include "skip/skip_pointers.h"
#include "splitter/strategy.h"
#include "util/rng.h"

int main() {
  using namespace nwd;
  Rng rng(42);
  const ColoredGraph g = gen::BoundedDegreeGraph(5000, 5, 2.4, {1, 0.2},
                                                 &rng);
  std::printf("graph: %s  (color 0 = Blue)\n\n", g.DebugString().c_str());

  // ---- Example 1-A: q(x,y) := dist(x,y) <= 2 ----
  const fo::Query q1 = fo::DistanceQuery(2);
  std::printf("Example 1-A  %s\n", fo::ToString(q1).c_str());

  // Example 1-B: a (2,4)-neighborhood cover; testing dist<=2 reduces to
  // the bag of x.
  const NeighborhoodCover cover = NeighborhoodCover::Build(g, 2);
  std::printf(
      "Example 1-B  (2,4)-cover: %lld bags, degree %lld, sum|X| = %lld "
      "(= n^%.3f)\n",
      static_cast<long long>(cover.NumBags()),
      static_cast<long long>(cover.Degree()),
      static_cast<long long>(cover.TotalBagSize()),
      std::log(static_cast<double>(cover.TotalBagSize())) /
          std::log(static_cast<double>(g.NumVertices())));

  // Example 1-C: Splitter's reply in a bag and the removal recoloring.
  const auto strategy = MakeAutoStrategy(g);
  const int64_t bag0 = cover.AssignedBag(0);
  const Vertex s_x =
      strategy->ChooseSplit(cover.Bag(bag0), cover.Center(bag0));
  int first_dist_color = -1;
  const SubgraphView h = BuildRemovalGraph(g, s_x, 2, &first_dist_color);
  const fo::FormulaPtr q1_rewritten =
      RewriteForRemoval(q1.formula, {}, g, s_x, first_dist_color);
  std::printf(
      "Example 1-C  bag of node 0 has %zu members; Splitter removes %lld;\n"
      "             H = G \\ {s} gains colors R_1,R_2 (indices %d,%d) and "
      "the query becomes\n             %s\n",
      cover.Bag(bag0).size(), static_cast<long long>(s_x),
      first_dist_color, first_dist_color + 1,
      fo::ToString(q1_rewritten).c_str());

  // ---- Example 2: q(x,y) := dist(x,y) > 2 & Blue(y) ----
  const fo::Query q2 = fo::FarColorQuery(2, 0);
  std::printf("\nExample 2    %s\n", fo::ToString(q2).c_str());
  const auto kernels = ComputeAllKernels(g, cover, 2);
  SkipPointers skip(g.NumVertices(), kernels, g.ColorMembers(0), 2);
  std::printf(
      "             skip pointers over the %zu blue nodes: %lld stored "
      "(b,S) pairs (%.2f per vertex)\n",
      g.ColorMembers(0).size(), static_cast<long long>(skip.TotalEntries()),
      static_cast<double>(skip.TotalEntries()) /
          static_cast<double>(g.NumVertices()));
  const Vertex hop =
      skip.Skip(0, {cover.AssignedBag(0)});
  std::printf(
      "             SKIP(0, {X(0)}) = %lld: the smallest blue node "
      "clear of node 0's kernel\n",
      static_cast<long long>(hop));

  const EnumerationEngine engine(g, q2);
  ConstantDelayEnumerator enumerator(engine);
  int64_t count = 0;
  while (enumerator.NextSolution().has_value()) ++count;
  std::printf("             engine enumerates %lld solutions\n",
              static_cast<long long>(count));

  // ---- Independence sentences (Section 5.1.2) ----
  const IndependenceResult scattered =
      CheckIndependenceSentence(g, fo::Color(0, 0), 0, 4, 4);
  std::printf(
      "\nxi-sentence  \"exist 4 pairwise dist>4 blue nodes\": %s "
      "(witnesses:",
      scattered.holds ? "holds" : "fails");
  for (Vertex w : scattered.witnesses) {
    std::printf(" %lld", static_cast<long long>(w));
  }
  std::printf(")%s\n",
              scattered.greedy_decided ? "  [greedy fast path]" : "");
  return 0;
}
