// Quickstart: build a colored graph, parse an FO+ query, preprocess it,
// and use all three of the paper's interfaces — Test (Cor. 2.4),
// Next (Thm. 2.3) and constant-delay enumeration (Cor. 2.5).

#include <cstdio>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "util/rng.h"

int main() {
  using namespace nwd;

  // A random tree with 2 colors; color 0 is "Blue".
  Rng rng(2024);
  const ColoredGraph g = gen::RandomTree(2000, 0, {2, 0.2}, &rng);
  std::printf("graph: %s\n", g.DebugString().c_str());

  // Example 2 of the paper: blue nodes far from x.
  const fo::ParseResult parsed =
      fo::ParseQuery("(x, y) := dist(x, y) > 2 & Blue(y)", {{"Blue", 0}});
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("query: %s\n", fo::ToString(parsed.query).c_str());

  // Preprocessing (pseudo-linear).
  const EnumerationEngine engine(g, parsed.query);
  std::printf("preprocessed: %lld cover bags, cover degree %lld, %s\n",
              static_cast<long long>(engine.stats().cover_bags),
              static_cast<long long>(engine.stats().cover_degree),
              engine.used_fallback() ? "fallback" : "LNF engine");

  // Corollary 2.4: constant-time testing.
  std::printf("Test((0, 7))  = %s\n", engine.Test({0, 7}) ? "yes" : "no");

  // Theorem 2.3: smallest solution >= (5, 0).
  if (const auto next = engine.Next({5, 0}); next.has_value()) {
    std::printf("Next((5, 0))  = (%lld, %lld)\n",
                static_cast<long long>((*next)[0]),
                static_cast<long long>((*next)[1]));
  }

  // Corollary 2.5: constant-delay enumeration (first five solutions).
  ConstantDelayEnumerator enumerator(engine);
  std::printf("first solutions:");
  for (int i = 0; i < 5; ++i) {
    const auto t = enumerator.NextSolution();
    if (!t.has_value()) break;
    std::printf(" (%lld,%lld)", static_cast<long long>((*t)[0]),
                static_cast<long long>((*t)[1]));
  }
  std::printf("\n");

  // Count everything (still constant delay per answer).
  int64_t total = 0;
  enumerator.Reset();
  while (enumerator.NextSolution().has_value()) ++total;
  std::printf("total solutions: %lld\n", static_cast<long long>(total));
  return 0;
}
