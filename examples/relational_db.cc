// Scenario: an actual relational database (authors, papers, citations)
// reduced to a colored graph via the adjacency-graph transform A'(D) of
// Section 2, with queries rewritten per Lemma 2.2.

#include <cstdio>

#include "baseline/naive_enum.h"
#include "fo/ast.h"
#include "fo/naive_eval.h"
#include "relational/adjacency_graph.h"
#include "relational/database.h"
#include "relational/rewrite.h"
#include "util/rng.h"

int main() {
  using namespace nwd;
  using namespace nwd::relational;
  Rng rng(5);

  // Schema: Wrote(author, paper), Cites(paper, paper).
  Schema schema;
  schema.AddRelation("Wrote", 2);
  schema.AddRelation("Cites", 2);

  // A small synthetic bibliography: 8 authors, 12 papers. (The rewritten
  // query is quantified, i.e. outside the engine's LNF fragment, so it is
  // evaluated by the baseline — keep the instance modest.)
  const int64_t kAuthors = 8;
  const int64_t kPapers = 12;
  Database db(schema, kAuthors + kPapers);
  for (int64_t p = 0; p < kPapers; ++p) {
    const int64_t num_authors = 1 + static_cast<int64_t>(rng.NextBounded(3));
    for (int64_t i = 0; i < num_authors; ++i) {
      db.AddFact("Wrote", {static_cast<int64_t>(rng.NextBounded(kAuthors)),
                           kAuthors + p});
    }
    // Papers cite up to 4 earlier papers.
    for (int64_t c = 0; c < 4 && p > 0; ++c) {
      if (rng.NextBool(0.5)) {
        db.AddFact("Cites",
                   {kAuthors + p,
                    kAuthors + static_cast<int64_t>(rng.NextBounded(p))});
      }
    }
  }
  std::printf("database: |dom| = %lld, ||D|| = %lld\n",
              static_cast<long long>(db.domain_size()),
              static_cast<long long>(db.SizeNorm()));

  // The adjacency colored graph A'(D).
  const AdjacencyGraph a = BuildAdjacencyGraph(db);
  std::printf("A'(D): %s (1-subdivided incidence structure)\n",
              a.graph.DebugString().c_str());

  // Lemma 2.2 rewrite of
  //   q(x, y) := exists p, p' (Wrote(x, p) & Cites(p, p') & Wrote(y, p'))
  // ("author x cites author y").
  // Variables: x=0, y=1, p=2, p'=3; atom-internal fresh vars from 4.
  const fo::FormulaPtr wrote_xp =
      RelationAtom(a, schema, "Wrote", {0, 2}, 4);
  const fo::FormulaPtr cites =
      RelationAtom(a, schema, "Cites", {2, 3}, 7);
  const fo::FormulaPtr wrote_yp =
      RelationAtom(a, schema, "Wrote", {1, 3}, 10);
  // Hoist subformulas so each is evaluated once per quantifier level, and
  // relativize the quantified paper variables to elements (the guard also
  // lets the evaluator range over elements only).
  fo::FormulaPtr inner =
      fo::Exists(3, fo::And(fo::Color(a.element_color, 3),
                            fo::And(cites, wrote_yp)));
  fo::FormulaPtr body = fo::And(fo::Color(a.element_color, 2),
                                fo::And(wrote_xp, inner));
  fo::Query query;
  query.formula = Relativize(a, fo::Exists(2, body), {0, 1});
  query.free_vars = {0, 1};

  // The rewritten query is quantified, so the engine would fall back; we
  // run the baseline directly and cross-check a sample against the
  // relational ground truth.
  BacktrackingEnumerator enumerator(a.graph, query);
  int64_t pairs = 0;
  Tuple first_pair;
  enumerator.Enumerate([&pairs, &first_pair](const Tuple& t) {
    if (pairs == 0) first_pair = t;
    ++pairs;
    return true;
  });
  std::printf("author-cites-author pairs via A'(D): %lld\n",
              static_cast<long long>(pairs));
  if (pairs > 0) {
    std::printf("first pair: author %lld cites author %lld\n",
                static_cast<long long>(first_pair[0]),
                static_cast<long long>(first_pair[1]));
  }

  // Ground truth computed relationally.
  int64_t expected = 0;
  for (int64_t x = 0; x < kAuthors; ++x) {
    for (int64_t y = 0; y < kAuthors; ++y) {
      bool found = false;
      for (const Tuple& w1 : db.Facts(0)) {
        if (w1[0] != x || found) continue;
        for (const Tuple& c : db.Facts(1)) {
          if (c[0] != w1[1] || found) continue;
          if (db.HasFact(0, {y, c[1]})) found = true;
        }
      }
      if (found) ++expected;
    }
  }
  std::printf("relational ground truth: %lld (%s)\n",
              static_cast<long long>(expected),
              pairs == expected ? "agree" : "MISMATCH");
  return pairs == expected ? 0 : 1;
}
