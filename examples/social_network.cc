// Scenario: a sparse "who-follows-whom" network (bounded-degree random
// graph). Analysts ask for pairs of *influencers* that are far apart —
// useful for seeding independent ad campaigns — and for triples where a
// fresh account is far from two given moderators (Example 2' of the
// paper).
//
// Shows: multi-query reuse of one graph, Next() as a pagination cursor,
// and the engine/baseline agreement.

#include <cstdio>

#include "baseline/naive_enum.h"
#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace nwd;
  Rng rng(7);

  // 50k users in a sparse follow graph (max 6 follows, ~2.4 average);
  // color 0 = influencer, color 1 = new account.
  const ColoredGraph network =
      gen::BoundedDegreeGraph(50000, 6, 2.4, {2, 0.05}, &rng);
  std::printf("network: %s\n", network.DebugString().c_str());
  const std::map<std::string, int> colors{{"Influencer", 0}, {"New", 1}};

  // Query 1: pairs of influencers at distance > 2 (independent reach).
  const fo::ParseResult q1 = fo::ParseQuery(
      "(x, y) := Influencer(x) & Influencer(y) & dist(x, y) > 2", colors);
  if (!q1.ok) {
    std::printf("%s\n", q1.error.c_str());
    return 1;
  }

  Timer prep;
  const EnumerationEngine engine(network, q1.query);
  std::printf("preprocessing: %.3fs (%s; bags=%lld degree=%lld)\n",
              prep.ElapsedSeconds(),
              engine.used_fallback() ? "fallback" : "LNF engine",
              static_cast<long long>(engine.stats().cover_bags),
              static_cast<long long>(engine.stats().cover_degree));

  // Page through results 10 at a time using Next() as the cursor — the
  // "compressed result set" view of enumeration from the paper's intro.
  Tuple cursor{0, 0};
  for (int page = 0; page < 2; ++page) {
    std::printf("page %d:", page);
    for (int row = 0; row < 10; ++row) {
      const auto t = engine.Next(cursor);
      if (!t.has_value()) break;
      std::printf(" (%lld,%lld)", static_cast<long long>((*t)[0]),
                  static_cast<long long>((*t)[1]));
      cursor = *t;
      if (!LexIncrement(&cursor, network.NumVertices())) break;
    }
    std::printf("\n");
  }

  // Timed full enumeration with delay statistics.
  ConstantDelayEnumerator enumerator(engine);
  Timer total;
  int64_t count = 0;
  int64_t max_delay_ns = 0;
  Timer delay;
  while (true) {
    delay.Restart();
    const auto t = enumerator.NextSolution();
    const int64_t d = delay.ElapsedNanos();
    if (!t.has_value()) break;
    if (d > max_delay_ns) max_delay_ns = d;
    ++count;
  }
  std::printf("enumerated %lld pairs in %.3fs (max delay %.1f us)\n",
              static_cast<long long>(count), total.ElapsedSeconds(),
              static_cast<double>(max_delay_ns) / 1000.0);

  // Query 2 (Example 2' shape) on a smaller copy, cross-checked against
  // the baseline.
  const ColoredGraph small =
      gen::BoundedDegreeGraph(300, 5, 2.5, {2, 0.1}, &rng);
  const fo::ParseResult q2 = fo::ParseQuery(
      "(x, y, z) := dist(x, z) > 2 & dist(y, z) > 2 & New(z)", colors);
  if (!q2.ok) {
    std::printf("%s\n", q2.error.c_str());
    return 1;
  }
  const EnumerationEngine engine2(small, q2.query);
  ConstantDelayEnumerator enum2(engine2);
  int64_t engine_count = 0;
  while (enum2.NextSolution().has_value()) ++engine_count;
  BacktrackingEnumerator baseline(small, q2.query);
  const int64_t base_count =
      static_cast<int64_t>(baseline.AllSolutions().size());
  std::printf("triple query: engine=%lld baseline=%lld (%s)\n",
              static_cast<long long>(engine_count),
              static_cast<long long>(base_count),
              engine_count == base_count ? "agree" : "MISMATCH");
  return engine_count == base_count ? 0 : 1;
}
