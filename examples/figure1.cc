// Reproduces Figure 1 of the paper: the Storing-Theorem trie for the
// identity function on {2, 4, 5, 19, 24, 25} with n = 27 and eps = 1/3,
// printed register by register, then the appendix's removal of 19.

#include <cstdio>

#include "storing/trie.h"

namespace {

void PrintRegisters(const nwd::StoringTrie& trie, const char* title) {
  std::printf("%s (registers 0..%lld):\n", title,
              static_cast<long long>(trie.RegistersUsed() - 1));
  for (int64_t i = 0; i < trie.RegistersUsed(); ++i) {
    const auto reg = trie.DebugRegister(i);
    if (i == 0) {
      std::printf("  R_%-2lld = frontier -> %lld\n",
                  static_cast<long long>(i),
                  static_cast<long long>(reg.payload));
      continue;
    }
    const char* kind = reg.delta == 1    ? "child/value"
                       : reg.delta == 0 ? "empty->succ"
                                        : "parent-ptr ";
    if (reg.payload == nwd::StoringTrie::kNullPayload) {
      std::printf("  R_%-2lld = (%2d, Null)  %s\n",
                  static_cast<long long>(i), reg.delta, kind);
    } else {
      std::printf("  R_%-2lld = (%2d, %4lld)  %s\n",
                  static_cast<long long>(i), reg.delta,
                  static_cast<long long>(reg.payload), kind);
    }
  }
}

}  // namespace

int main() {
  nwd::StoringTrie trie(/*arity=*/1, /*n=*/27, /*epsilon=*/1.0 / 3.0);
  std::printf("n = 27, eps = 1/3  =>  d = %d, h = %d\n", trie.degree(),
              trie.height_per_coordinate());
  for (int64_t v : {2, 4, 5, 19, 24, 25}) trie.Insert({v}, v);
  PrintRegisters(trie, "Figure 1: f = id on {2,4,5,19,24,25}");

  std::printf("\nlookup(7): ");
  const auto miss = trie.Lookup({7});
  std::printf("absent, successor = %lld\n",
              static_cast<long long>(miss.successor[0]));
  std::printf("lookup(19): present, f(19) = %lld\n",
              *trie.Get({19}));

  std::printf("\nRemoving 19 (Appendix 7.4 walk-through)...\n");
  trie.Erase({19});
  PrintRegisters(trie, "After Remove(19)");
  std::printf("lookup(7) now skips to %lld\n",
              static_cast<long long>(trie.Lookup({7}).successor[0]));
  return 0;
}
