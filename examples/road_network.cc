// Scenario: a grid road network (planar, hence nowhere dense). Charging
// stations are sparse; we ask distance questions — the warm-up result of
// the paper (Proposition 4.2, the constant-time distance oracle) plus
// distance-query enumeration on top of it.

#include <cstdio>

#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/parser.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "local/distance_oracle.h"
#include "splitter/strategy.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace nwd;
  Rng rng(11);

  // A 300 x 300 grid city; color 0 marks charging stations (2%).
  const ColoredGraph city = gen::Grid(300, 300, {1, 0.02}, &rng);
  std::printf("city: %s\n", city.DebugString().c_str());

  // --- Proposition 4.2: the distance oracle ---
  const auto strategy = MakeAutoStrategy(city);
  Timer prep;
  const DistanceOracle oracle(city, /*radius=*/6, *strategy);
  std::printf(
      "oracle preprocessing: %.3fs (levels=%lld, bags=%lld, depth=%d)\n",
      prep.ElapsedSeconds(), static_cast<long long>(oracle.stats().levels),
      static_cast<long long>(oracle.stats().total_bags),
      oracle.stats().max_depth);

  // Constant-time queries, verified against BFS.
  BfsScratch scratch(city.NumVertices());
  Timer queries;
  int64_t probes = 0;
  int64_t mismatches = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    const Vertex a = static_cast<Vertex>(
        rng.NextBounded(static_cast<uint64_t>(city.NumVertices())));
    const Vertex b = static_cast<Vertex>(
        rng.NextBounded(static_cast<uint64_t>(city.NumVertices())));
    const bool near = oracle.WithinDistance(a, b, 6);
    ++probes;
    if (trial % 10000 == 0) {  // spot-verify a sample against BFS
      scratch.Neighborhood(city, a, 6);
      if (near != (scratch.DistanceTo(b) >= 0)) ++mismatches;
    }
  }
  std::printf("%lld distance probes in %.3fs (%.0f ns each), %lld "
              "spot-check mismatches\n",
              static_cast<long long>(probes), queries.ElapsedSeconds(),
              queries.ElapsedSeconds() * 1e9 / static_cast<double>(probes),
              static_cast<long long>(mismatches));

  // --- Enumeration: intersections with a charging station within 4 ---
  const fo::ParseResult q = fo::ParseQuery(
      "(x, y) := Station(y) & dist(x, y) <= 4", {{"Station", 0}});
  if (!q.ok) {
    std::printf("%s\n", q.error.c_str());
    return 1;
  }
  Timer engine_prep;
  const EnumerationEngine engine(city, q.query);
  std::printf("engine preprocessing: %.3fs\n", engine_prep.ElapsedSeconds());

  ConstantDelayEnumerator enumerator(engine);
  Timer enum_time;
  int64_t covered_pairs = 0;
  while (enumerator.NextSolution().has_value()) ++covered_pairs;
  std::printf("covered (intersection, station) pairs: %lld in %.3fs\n",
              static_cast<long long>(covered_pairs),
              enum_time.ElapsedSeconds());
  return mismatches == 0 ? 0 : 1;
}
