// nwd-attest — the claim-attestation and regression-guard CLI.
//
// Three modes over nwd-bench-json/1 artifacts:
//
//   nwd-attest attest FILE...        fit log-log scaling exponents across
//                                    each graph-class n-sweep and gate the
//                                    paper claims (Thm 2.3, Cor 2.5,
//                                    Thm 3.1); writes ATTEST.json (--out)
//   nwd-attest baseline OLD NEW      diff two artifacts metric-by-metric
//     (also: --baseline OLD NEW)     with relative-tolerance gating
//   nwd-attest sweep                 run a fresh in-process n-sweep (no
//                                    google-benchmark needed), emit the
//                                    bench artifact, then attest it
//
// Exit codes (same contract as nwdq): 0 = attestation/guard passed,
// 1 = a gated claim failed or a regression/divergence was found,
// 2 = usage, I/O, or parse error. Diagnostics are one line on stderr.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "enumerate/engine.h"
#include "enumerate/enumerator.h"
#include "fo/builders.h"
#include "obs/attest.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "util/timer.h"

namespace nwd {
namespace {

[[noreturn]] void UsageError(const std::string& message) {
  std::cerr << "nwd-attest: " << message << "\n"
            << "usage: nwd-attest attest FILE... [--out F] [--epsilon E]\n"
            << "                  [--noise-band B] [--flat-slope S]\n"
            << "                  [--min-points N] [--strict] [--gate-max]\n"
            << "       nwd-attest baseline OLD NEW [--rel-tol T] [--out F]\n"
            << "                  [--gate-max] [--require-all]\n"
            << "       nwd-attest sweep [--class tree|bdeg|grid]\n"
            << "                  [--prep-only]\n"
            << "                  [--sizes N,N,...] [--seed S] [--out F]\n"
            << "                  [--bench-out F] [attest gate flags]\n";
  std::exit(2);
}

double ParseDoubleOrDie(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    UsageError("bad value '" + text + "' for " + flag);
  }
  return value;
}

int64_t ParseInt64OrDie(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    UsageError("bad value '" + text + "' for " + flag);
  }
  return static_cast<int64_t>(value);
}

// Pulls `--flag VALUE` pairs and bare `--flag` switches out of argv;
// returns what's left (the positional arguments).
class FlagSet {
 public:
  FlagSet(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> TakeValue(const std::string& flag) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] != flag) continue;
      if (i + 1 >= args_.size()) UsageError(flag + " needs a value");
      std::string value = args_[i + 1];
      args_.erase(args_.begin() + static_cast<long>(i),
                  args_.begin() + static_cast<long>(i) + 2);
      return value;
    }
    return std::nullopt;
  }

  bool TakeSwitch(const std::string& flag) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] != flag) continue;
      args_.erase(args_.begin() + static_cast<long>(i));
      return true;
    }
    return false;
  }

  const std::vector<std::string>& positional() const { return args_; }

 private:
  std::vector<std::string> args_;
};

obs::AttestConfig TakeAttestConfig(FlagSet& flags) {
  obs::AttestConfig config;
  if (auto v = flags.TakeValue("--epsilon")) {
    config.epsilon = ParseDoubleOrDie("--epsilon", *v);
  }
  if (auto v = flags.TakeValue("--noise-band")) {
    config.noise_band = ParseDoubleOrDie("--noise-band", *v);
  }
  if (auto v = flags.TakeValue("--flat-slope")) {
    config.flat_slope = ParseDoubleOrDie("--flat-slope", *v);
  }
  if (auto v = flags.TakeValue("--min-points")) {
    config.min_points =
        static_cast<int>(ParseInt64OrDie("--min-points", *v));
  }
  config.gate_max = flags.TakeSwitch("--gate-max");
  config.strict = flags.TakeSwitch("--strict");
  return config;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "nwd-attest: cannot write '" << path << "'\n";
    std::exit(2);
  }
  out << content;
}

obs::BenchArtifact LoadArtifactOrDie(const std::string& path) {
  obs::BenchParseResult parsed = obs::ParseBenchArtifactFile(path);
  if (!parsed.ok) {
    std::cerr << "nwd-attest: " << parsed.error << "\n";
    std::exit(2);
  }
  return std::move(parsed.artifact);
}

int FinishAttest(const obs::AttestReport& report,
                 const std::optional<std::string>& out_path) {
  if (out_path.has_value()) {
    std::ostringstream json;
    obs::WriteAttestJson(json, report);
    WriteFileOrDie(*out_path, json.str());
  }
  obs::WriteAttestSummary(std::cout, report);
  return report.pass ? 0 : 1;
}

int RunAttest(FlagSet& flags) {
  const obs::AttestConfig config = TakeAttestConfig(flags);
  const std::optional<std::string> out_path = flags.TakeValue("--out");
  const std::vector<std::string>& paths = flags.positional();
  if (paths.empty()) UsageError("attest needs at least one artifact file");
  std::vector<obs::BenchArtifact> artifacts;
  for (const std::string& path : paths) {
    artifacts.push_back(LoadArtifactOrDie(path));
  }
  return FinishAttest(obs::Attest(artifacts, paths, config), out_path);
}

int RunBaseline(FlagSet& flags) {
  obs::BaselineConfig config;
  if (auto v = flags.TakeValue("--rel-tol")) {
    config.rel_tol = ParseDoubleOrDie("--rel-tol", *v);
  }
  config.gate_max = flags.TakeSwitch("--gate-max");
  config.require_all = flags.TakeSwitch("--require-all");
  const std::optional<std::string> out_path = flags.TakeValue("--out");
  const std::vector<std::string>& paths = flags.positional();
  if (paths.size() != 2) {
    UsageError("baseline needs exactly two artifact files (OLD NEW)");
  }
  const obs::BenchArtifact baseline = LoadArtifactOrDie(paths[0]);
  const obs::BenchArtifact current = LoadArtifactOrDie(paths[1]);
  const obs::BaselineReport report =
      obs::CompareBaseline(baseline, current, config);
  if (out_path.has_value()) {
    std::ostringstream json;
    obs::WriteBaselineJson(json, report);
    WriteFileOrDie(*out_path, json.str());
  }
  obs::WriteBaselineSummary(std::cout, report);
  return report.pass ? 0 : 1;
}

int GraphKindFromName(const std::string& name) {
  for (int kind : {bench::kTree, bench::kBoundedDegree, bench::kGrid,
                   bench::kCaterpillar, bench::kSubdividedClique,
                   bench::kForest}) {
    if (name == bench::GraphKindName(kind)) return kind;
  }
  UsageError("unknown graph class '" + name +
             "' (want tree, bdeg, grid, caterpillar, subdiv, or forest)");
}

std::vector<int64_t> ParseSizes(const std::string& text) {
  std::vector<int64_t> sizes;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    const int64_t n = ParseInt64OrDie("--sizes", token);
    if (n <= 0) UsageError("--sizes entries must be positive");
    sizes.push_back(n);
  }
  if (sizes.empty()) UsageError("--sizes needs at least one size");
  return sizes;
}

// One fresh n-sweep, in process: build the graph, time the engine
// construction (Thm 2.3), read the skip-structure size (Thm 3.1), then
// enumerate everything once recording inter-output delays (Cor 2.5).
// Emits the same artifact shape bench_delay --json writes, so the sweep
// output feeds the attest fit, the baseline guard, and any other
// nwd-bench-json/1 consumer interchangeably.
//
// With `prep_only` the enumeration pass is skipped: the run carries just
// the preprocessing-side counters (prep_ms, space_entries), the delay
// claims skip for lack of metrics, and the sweep stays cheap enough to
// gate Thm 2.3 at n = 2^16 in CI.
obs::BenchRun SweepOne(int kind, int64_t n, uint64_t seed, bool prep_only) {
  obs::BenchRun run;
  run.name = std::string("sweep/") + bench::GraphKindName(kind) + "/" +
             std::to_string(n);
  run.graph_class = bench::GraphKindName(kind);
  run.n = n;
  run.iterations = 1;

  const ColoredGraph graph = bench::MakeGraph(kind, n, seed);
  Timer prep;
  EnumerationEngine engine(graph, fo::FarColorQuery(2, 0));
  const double prep_ms = static_cast<double>(prep.ElapsedNanos()) / 1e6;

  if (prep_only) {
    run.real_ms = prep_ms;
    run.cpu_ms = prep_ms;
    run.counters.emplace_back("n", static_cast<double>(n));
    run.counters.emplace_back("prep_ms", prep_ms);
    run.counters.emplace_back(
        "space_entries", static_cast<double>(engine.stats().skip_entries));
    return run;
  }

  obs::Histogram steady;
  int64_t first_delay = 0;
  int64_t produced = 0;
  Timer total;
  ConstantDelayEnumerator enumerator(engine);
  Timer delay;
  for (;;) {
    delay.Restart();
    const auto t = enumerator.NextSolution();
    const int64_t d = delay.ElapsedNanos();
    if (!t.has_value()) break;
    if (produced == 0) {
      first_delay = d;
    } else {
      steady.Record(d);
    }
    ++produced;
  }
  const double total_ms = static_cast<double>(total.ElapsedNanos()) / 1e6;
  const obs::Histogram::Snapshot snapshot = steady.Read();

  run.real_ms = total_ms;
  run.cpu_ms = total_ms;  // single-threaded sweep: wall == cpu
  run.counters.emplace_back("n", static_cast<double>(n));
  run.counters.emplace_back("solutions", static_cast<double>(produced));
  run.counters.emplace_back("prep_ms", prep_ms);
  run.counters.emplace_back(
      "space_entries", static_cast<double>(engine.stats().skip_entries));
  run.counters.emplace_back("first_delay_ns",
                            static_cast<double>(first_delay));
  run.counters.emplace_back("max_delay_ns",
                            static_cast<double>(snapshot.max));
  run.counters.emplace_back("mean_delay_ns", snapshot.mean());
  run.counters.emplace_back("delay_p50_ns",
                            obs::SnapshotQuantile(snapshot, 0.50));
  run.counters.emplace_back("delay_p99_ns",
                            obs::SnapshotQuantile(snapshot, 0.99));
  return run;
}

int RunSweep(FlagSet& flags) {
  const obs::AttestConfig config = TakeAttestConfig(flags);
  int kind = bench::kTree;
  if (auto v = flags.TakeValue("--class")) kind = GraphKindFromName(*v);
  std::vector<int64_t> sizes = {512, 1024, 2048};
  if (auto v = flags.TakeValue("--sizes")) sizes = ParseSizes(*v);
  uint64_t seed = 12345;
  if (auto v = flags.TakeValue("--seed")) {
    seed = static_cast<uint64_t>(ParseInt64OrDie("--seed", *v));
  }
  const std::optional<std::string> out_path = flags.TakeValue("--out");
  const std::optional<std::string> bench_out = flags.TakeValue("--bench-out");
  const bool prep_only = flags.TakeSwitch("--prep-only");
  if (!flags.positional().empty()) {
    UsageError("unexpected argument '" + flags.positional()[0] + "'");
  }

  obs::BenchArtifact artifact;
  artifact.benchmark = "nwd_attest_sweep";
  for (const int64_t n : sizes) {
    artifact.runs.push_back(SweepOne(kind, n, seed, prep_only));
    std::cerr << "nwd-attest: swept " << bench::GraphKindName(kind) << " n="
              << n << "\n";
  }
  if (bench_out.has_value()) {
    std::ostringstream json;
    obs::WriteBenchArtifactJson(json, artifact);
    WriteFileOrDie(*bench_out, json.str());
  }
  const std::vector<std::string> sources = {"sweep:" +
                                            std::string(
                                                bench::GraphKindName(kind))};
  return FinishAttest(obs::Attest({artifact}, sources, config), out_path);
}

int Main(int argc, char** argv) {
  if (argc < 2) UsageError("missing mode");
  const std::string mode = argv[1];
  // `--baseline OLD NEW` is an alias for the baseline subcommand so the
  // guard reads naturally in scripts.
  if (mode == "--baseline" || mode == "baseline") {
    FlagSet flags(argc - 2, argv + 2);
    return RunBaseline(flags);
  }
  if (mode == "attest") {
    FlagSet flags(argc - 2, argv + 2);
    return RunAttest(flags);
  }
  if (mode == "sweep") {
    FlagSet flags(argc - 2, argv + 2);
    return RunSweep(flags);
  }
  UsageError("unknown mode '" + mode + "'");
}

}  // namespace
}  // namespace nwd

int main(int argc, char** argv) { return nwd::Main(argc, argv); }
