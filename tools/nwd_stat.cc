// nwd-stat — fleet-scrape poller over nwdd's Prometheus exposition.
//
// Usage:
//   nwd-stat --diff A.prom B.prom [--interval-s S]
//   nwd-stat --spawn <nwdd> <nwdd args...> [--raw | --check |
//                                           --interval-ms N]
//
// Modes:
//   --diff    Reads two Prometheus text scrapes from files and prints a
//             human rate table: one row per counter/histogram _count that
//             moved, with the delta and (given --interval-s) the rate.
//   --spawn   Forks the given nwdd command on a stdio pipe pair, sends it
//             `metrics format=prom`, and then:
//               --raw          prints one scrape verbatim and exits.
//               --check        validates exposition conformance (every
//                              sample preceded by # HELP and # TYPE for
//                              its family, histogram cumulative buckets
//                              monotone, le="+Inf" == _count) and exits
//                              0 iff conformant — the CI guard's teeth
//                              (tests/validate_prom.cmake).
//               (default)      scrapes twice --interval-ms apart (default
//                              1000) and prints the rate table.
//
// The parser here is deliberately a consumer-grade Prometheus text
// reader, not a reimplementation of our own writer: it only assumes the
// text exposition format, so it double-checks what a real scraper would
// see, not what obs/prom.cc intended to say.
//
// Exit codes: 0 ok/conformant, 1 nonconformant or scrape failure, 2 usage.

#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/wire.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: nwd-stat --diff A.prom B.prom [--interval-s S]\n"
      "       nwd-stat --spawn <nwdd> <args...> [--raw | --check |"
      " --interval-ms N]\n");
  return 2;
}

// One parsed exposition: sample name (with labels stripped into `le` for
// buckets) -> value, plus the HELP/TYPE metadata seen per family.
struct Exposition {
  std::map<std::string, double> samples;  // full sample key -> value
  std::map<std::string, std::string> types;  // family -> TYPE
  std::set<std::string> helped;              // families with # HELP
  // Histogram buckets per family, in file order: (le text, value).
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;
};

// The family a sample belongs to for TYPE lookup: strip the
// _bucket/_sum/_count suffix (Prometheus histogram convention).
std::string FamilyOf(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      const std::string family = name.substr(0, name.size() - len);
      return family;
    }
  }
  return name;
}

bool ParseExposition(std::istream& in, Exposition* out, std::string* error) {
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, family, rest;
      meta >> hash >> kind >> family;
      if (kind == "HELP") out->helped.insert(family);
      if (kind == "TYPE") {
        std::string type;
        meta >> type;
        out->types[family] = type;
      }
      continue;
    }
    // Sample: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t space = line.find(' ', brace == std::string::npos
                                             ? 0
                                             : line.find('}', brace));
    if (space == std::string::npos) {
      *error = "line " + std::to_string(lineno) + ": no value: " + line;
      return false;
    }
    const std::string key = line.substr(0, space);
    const std::string name =
        brace == std::string::npos ? key : line.substr(0, brace);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    if (end == line.c_str() + space + 1) {
      *error = "line " + std::to_string(lineno) + ": bad value: " + line;
      return false;
    }
    out->samples[key] = value;
    if (brace != std::string::npos &&
        name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      const size_t le = line.find("le=\"", brace);
      const size_t close = le == std::string::npos
                               ? std::string::npos
                               : line.find('"', le + 4);
      if (le == std::string::npos || close == std::string::npos) {
        *error = "line " + std::to_string(lineno) + ": bucket without le=";
        return false;
      }
      out->buckets[FamilyOf(name)].push_back(
          {line.substr(le + 4, close - le - 4), value});
    }
  }
  return true;
}

// Conformance: what a strict scraper would reject. Returns the number of
// violations, printing each.
int CheckConformance(const Exposition& e) {
  int violations = 0;
  auto violate = [&violations](const std::string& what) {
    std::fprintf(stderr, "nonconformant: %s\n", what.c_str());
    ++violations;
  };
  std::set<std::string> families;
  for (const auto& [key, value] : e.samples) {
    (void)value;
    const size_t brace = key.find('{');
    std::string family =
        FamilyOf(brace == std::string::npos ? key : key.substr(0, brace));
    // Counters are exposed as <family>_total with TYPE on the full name.
    if (e.types.count(family) == 0 &&
        e.types.count(family + "_total") != 0) {
      family += "_total";
    }
    families.insert(family);
  }
  for (const std::string& family : families) {
    if (e.types.count(family) == 0) {
      violate("family '" + family + "' has samples but no # TYPE");
    }
    if (e.helped.count(family) == 0) {
      violate("family '" + family + "' has samples but no # HELP");
    }
  }
  for (const auto& [family, buckets] : e.buckets) {
    double prev = -1.0;
    bool saw_inf = false;
    for (const auto& [le, value] : buckets) {
      if (value + 1e-9 < prev) {
        violate("histogram '" + family + "' bucket le=\"" + le +
                "\" not cumulative (" + std::to_string(value) + " < " +
                std::to_string(prev) + ")");
      }
      prev = value;
      if (le == "+Inf") {
        saw_inf = true;
        const auto count = e.samples.find(family + "_count");
        if (count == e.samples.end()) {
          violate("histogram '" + family + "' has no _count");
        } else if (count->second != value) {
          violate("histogram '" + family + "' le=\"+Inf\" != _count");
        }
      }
    }
    if (!saw_inf) violate("histogram '" + family + "' missing le=\"+Inf\"");
  }
  return violations;
}

// Rate table between two scrapes. Counters (and histogram _count/_sum)
// that moved, with per-second rates when the interval is known.
void PrintRateTable(const Exposition& a, const Exposition& b,
                    double interval_s) {
  std::printf("%-52s %14s %12s\n", "metric", "delta", "rate/s");
  for (const auto& [key, before] : a.samples) {
    const auto after = b.samples.find(key);
    if (after == b.samples.end()) continue;
    // Only monotone families are rates; gauges would just be noise here.
    const size_t brace = key.find('{');
    const std::string name =
        brace == std::string::npos ? key : key.substr(0, brace);
    std::string family = FamilyOf(name);
    auto type = b.types.find(family);
    if (type == b.types.end()) type = b.types.find(name);
    if (type == b.types.end() ||
        (type->second != "counter" && type->second != "histogram")) {
      continue;
    }
    const double delta = after->second - before;
    if (delta == 0.0) continue;
    if (interval_s > 0) {
      std::printf("%-52s %14.0f %12.2f\n", key.c_str(), delta,
                  delta / interval_s);
    } else {
      std::printf("%-52s %14.0f %12s\n", key.c_str(), delta, "-");
    }
  }
}

// One `metrics format=prom` scrape over an already-open frame lane.
bool Scrape(nwd::serve::Client* client, std::string* body) {
  nwd::serve::Response response;
  if (!client->Call("metrics format=prom", &response) || !response.ok) {
    std::fprintf(stderr, "error: metrics scrape failed (%s)\n",
                 response.transport_error ? "transport" : "error frame");
    return false;
  }
  *body = response.body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // a dead daemon is a failed scrape
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  if (mode == "--diff") {
    if (argc < 4) return Usage();
    double interval_s = 0.0;
    if (argc >= 6 && std::string(argv[4]) == "--interval-s") {
      interval_s = std::atof(argv[5]);
    }
    Exposition a, b;
    std::string error;
    std::ifstream fa(argv[2]), fb(argv[3]);
    if (!fa.is_open() || !fb.is_open()) {
      std::fprintf(stderr, "error: cannot open scrape files\n");
      return 1;
    }
    if (!ParseExposition(fa, &a, &error) ||
        !ParseExposition(fb, &b, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    PrintRateTable(a, b, interval_s);
    return 0;
  }

  if (mode == "--spawn") {
    // Split: everything up to the first trailing nwd-stat flag is the
    // child command line.
    int cmd_end = argc;
    bool raw = false, check = false;
    int64_t interval_ms = 1000;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--raw" || arg == "--check" || arg == "--interval-ms") {
        cmd_end = i;
        break;
      }
    }
    for (int i = cmd_end; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--raw") {
        raw = true;
      } else if (arg == "--check") {
        check = true;
      } else if (arg == "--interval-ms" && i + 1 < argc) {
        interval_ms = std::atoll(argv[++i]);
      } else {
        return Usage();
      }
    }
    if (cmd_end <= 2) return Usage();

    int to_child[2], from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      dup2(to_child[0], 0);
      dup2(from_child[1], 1);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> child_argv;
      for (int i = 2; i < cmd_end; ++i) child_argv.push_back(argv[i]);
      child_argv.push_back(nullptr);
      execvp(child_argv[0], child_argv.data());
      std::perror("execvp");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    nwd::serve::Client client(from_child[0], to_child[1], /*seed=*/1);

    int exit_code = 1;
    std::string first;
    if (Scrape(&client, &first)) {
      if (raw) {
        std::fputs(first.c_str(), stdout);
        exit_code = 0;
      } else if (check) {
        Exposition e;
        std::string error;
        std::istringstream in(first);
        if (!ParseExposition(in, &e, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
        } else {
          const int violations = CheckConformance(e);
          std::fprintf(stderr, "nwd-stat: %d conformance violation(s)\n",
                       violations);
          exit_code = violations == 0 ? 0 : 1;
        }
      } else {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
        std::string second;
        if (Scrape(&client, &second)) {
          Exposition a, b;
          std::string error;
          std::istringstream ia(first), ib(second);
          if (ParseExposition(ia, &a, &error) &&
              ParseExposition(ib, &b, &error)) {
            PrintRateTable(a, b, static_cast<double>(interval_ms) / 1e3);
            exit_code = 0;
          } else {
            std::fprintf(stderr, "error: %s\n", error.c_str());
          }
        }
      }
    }
    // Clean child teardown: ask for shutdown, then close the lane.
    nwd::serve::Response response;
    client.Call("shutdown", &response);
    close(to_child[1]);
    close(from_child[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    return exit_code;
  }

  return Usage();
}
