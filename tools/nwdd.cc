// nwdd — the hardened serving daemon over the enumeration engine.
//
// Usage:
//   nwdd <graph-source> '<query>' [--color Name=idx]...
//        [--max-inflight N] [--retry-after-ms N] [--deadline-ms N]
//        [--budget-ms N] [--max-edge-work N] [--threads N]
//        [--write-timeout-ms N] [--tcp PORT] [--no-reload] [--no-shutdown]
//        [--metrics-json FILE] [--slow-request-ms N] [--no-dump-on-death]
//
// <graph-source> is a plain path, `file:<path>`, or the deterministic
// `gen:<class>:<n>:<seed>` spec (class: tree|bdeg|grid|caterpillar).
//
// Default mode serves the length-prefixed frame protocol (serve/wire.h)
// on stdin/stdout until EOF or a `shutdown` request. With --tcp PORT the
// daemon instead listens on 127.0.0.1:PORT (0 = pick a free port, printed
// to stderr) and serves each accepted connection on its own handler
// thread until a `shutdown` request arrives.
//
// Robustness contract (see serve/daemon.h): reloads swap epochs
// atomically without blocking in-flight probes; per-request deadlines
// degrade to typed DEADLINE_EXCEEDED errors; past --max-inflight the
// daemon rejects with RETRY_AFTER instead of queueing; every outcome is
// a serve.* metric, dumped by the `metrics` request (JSON, or Prometheus
// text with `metrics format=prom`) and (at exit) into --metrics-json.
//
// Forensics: the always-on flight recorder (obs/flight.h) keeps the
// recent event history per thread. The `dump` request returns it over
// the wire; a fatal signal (SIGSEGV/SIGABRT/SIGBUS) dumps the tail to
// stderr before dying; requests slower than --slow-request-ms are
// captured eagerly; a simulated worker death dumps to stderr unless
// --no-dump-on-death.
//
// Exit codes: 0 clean shutdown, 1 bad data (graph/query), 2 usage.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "fo/analysis.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "serve/daemon.h"

namespace {

// Fatal-signal forensics: dump the flight recorder's recent tail to
// stderr, then re-raise with the default disposition so the exit status
// still reports the signal. DumpToFd takes no lock and allocates nothing,
// which is what makes it callable from here.
void FatalSignalHandler(int sig) {
  nwd::obs::FlightRecorder::Global().DumpToFd(2, /*max_events_per_ring=*/64);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallFatalSignalDumps() {
  std::signal(SIGSEGV, FatalSignalHandler);
  std::signal(SIGABRT, FatalSignalHandler);
  std::signal(SIGBUS, FatalSignalHandler);
}

bool ParseInt64Flag(const char* flag, const char* text, int64_t min_value,
                    int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value) {
    std::fprintf(stderr, "error: %s expects an integer >= %lld, got '%s'\n",
                 flag, static_cast<long long>(min_value), text);
    return false;
  }
  *out = value;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: nwdd <graph-source> '<query>' [--color Name=idx]...\n"
      "            [--max-inflight N] [--retry-after-ms N] "
      "[--deadline-ms N]\n"
      "            [--budget-ms N] [--max-edge-work N] [--threads N]\n"
      "            [--write-timeout-ms N] [--tcp PORT] [--no-reload]\n"
      "            [--no-shutdown] [--metrics-json FILE]\n"
      "            [--slow-request-ms N] [--no-dump-on-death]\n"
      "graph-source: <path> | file:<path> | gen:<class>:<n>:<seed>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // dying clients are EPIPE, not death
  InstallFatalSignalDumps();
  if (argc < 3) return Usage();
  std::string source = argv[1];
  const std::string query_text = argv[2];

  nwd::serve::DaemonOptions options;
  int64_t max_inflight = options.max_inflight;
  int64_t tcp_port = -1;
  const char* metrics_json = nullptr;
  std::map<std::string, int> color_names;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-inflight" && i + 1 < argc) {
      if (!ParseInt64Flag("--max-inflight", argv[++i], 1, &max_inflight)) {
        return 2;
      }
    } else if (arg == "--retry-after-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--retry-after-ms", argv[++i], 1,
                          &options.retry_after_ms)) {
        return 2;
      }
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--deadline-ms", argv[++i], 1,
                          &options.default_deadline_ms)) {
        return 2;
      }
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--budget-ms", argv[++i], 1,
                          &options.engine.budget.deadline_ms)) {
        return 2;
      }
    } else if (arg == "--max-edge-work" && i + 1 < argc) {
      if (!ParseInt64Flag("--max-edge-work", argv[++i], 1,
                          &options.engine.budget.max_edge_work)) {
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      int64_t threads = 1;
      if (!ParseInt64Flag("--threads", argv[++i], 0, &threads)) return 2;
      options.engine.num_threads = static_cast<int>(threads);
    } else if (arg == "--write-timeout-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--write-timeout-ms", argv[++i], 0,
                          &options.write_timeout_ms)) {
        return 2;
      }
    } else if (arg == "--tcp" && i + 1 < argc) {
      if (!ParseInt64Flag("--tcp", argv[++i], 0, &tcp_port)) return 2;
    } else if (arg == "--no-reload") {
      options.allow_reload = false;
    } else if (arg == "--no-shutdown") {
      options.allow_shutdown = false;
    } else if (arg == "--slow-request-ms" && i + 1 < argc) {
      if (!ParseInt64Flag("--slow-request-ms", argv[++i], 0,
                          &options.slow_request_ms)) {
        return 2;
      }
    } else if (arg == "--no-dump-on-death") {
      options.dump_on_death = false;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json = argv[++i];
      nwd::obs::SetMetricsEnabled(true);
    } else if (arg == "--color" && i + 1 < argc) {
      const std::string binding = argv[++i];
      const size_t eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      int64_t color_id = -1;
      if (!ParseInt64Flag("--color", binding.c_str() + eq + 1, 0,
                          &color_id)) {
        return 2;
      }
      color_names[binding.substr(0, eq)] = static_cast<int>(color_id);
    } else {
      return Usage();
    }
  }
  options.max_inflight = static_cast<int>(max_inflight);

  nwd::fo::ParseResult parsed =
      nwd::fo::ParseQuery(query_text, color_names);
  if (!parsed.ok) {
    parsed = nwd::fo::ParseFormula(query_text, color_names);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "query error: %s\n", parsed.error.c_str());
    return 1;
  }

  // A bare path is sugar for file:<path>.
  if (source.rfind("file:", 0) != 0 && source.rfind("gen:", 0) != 0) {
    source = "file:" + source;
  }

  nwd::serve::Daemon daemon(parsed.query, options);
  std::string error;
  if (!daemon.LoadInitialSnapshot(source, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "nwdd: serving '%s' over %s (epoch %lld)\n",
               nwd::fo::ToString(parsed.query).c_str(), source.c_str(),
               static_cast<long long>(daemon.registry().current_epoch()));

  if (tcp_port >= 0) {
    if (!daemon.ListenTcp(static_cast<int>(tcp_port), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "nwdd: listening on 127.0.0.1:%d\n",
                 daemon.tcp_port());
    daemon.WaitUntilStopped();
  } else {
    daemon.ServeBlocking(/*read_fd=*/0, /*write_fd=*/1);
  }

  if (metrics_json != nullptr) {
    std::ofstream out(metrics_json, std::ios::trunc);
    if (out.is_open()) {
      nwd::obs::MetricsRegistry::Global().WriteJson(out);
    } else {
      std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                   metrics_json);
    }
  }
  return 0;
}
